package backend

import (
	"context"
	"math"
	"testing"

	"quamax/internal/anneal"
	"quamax/internal/channel"
	"quamax/internal/chimera"
	"quamax/internal/core"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

func testOptions() core.Options {
	return core.Options{
		Graph:  chimera.New(6),
		Params: anneal.Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 40},
	}
}

func testInstance(t *testing.T, seed int64, mod modulation.Modulation, nt int) *mimo.Instance {
	t.Helper()
	in, err := mimo.Generate(rng.New(seed), mimo.Config{
		Mod: mod, Nt: nt, Nr: nt, Channel: channel.RandomPhase{}, SNRdB: math.Inf(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func problemOf(in *mimo.Instance) *Problem {
	return &Problem{Mod: in.Mod, H: in.H, Y: in.Y}
}

func TestLogicalSpins(t *testing.T) {
	for _, tc := range []struct {
		mod  modulation.Modulation
		nt   int
		want int
	}{
		{modulation.BPSK, 4, 4},
		{modulation.QPSK, 2, 4},
		{modulation.QAM16, 3, 12},
	} {
		in := testInstance(t, 7, tc.mod, tc.nt)
		if got := problemOf(in).LogicalSpins(); got != tc.want {
			t.Errorf("%v × %d users: LogicalSpins = %d, want %d", tc.mod, tc.nt, got, tc.want)
		}
	}
}

func TestAnnealerSolve(t *testing.T) {
	a, err := NewAnnealer("qpu0", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	in := testInstance(t, 11, modulation.QPSK, 4)
	res, err := a.Solve(context.Background(), problemOf(in), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if errs := in.BitErrors(res.Bits); errs != 0 {
		t.Fatalf("annealer backend: %d bit errors on a noise-free channel", errs)
	}
	if res.Backend != "qpu0" || res.Batched != 1 {
		t.Fatalf("result metadata: %+v", res)
	}
	if res.ComputeMicros <= 0 {
		t.Fatal("no compute time reported")
	}
	if est := a.Describe().PredictMicros(problemOf(in)); est != 40*2 {
		t.Fatalf("PredictMicros = %g, want Na·(Ta+Tp) = 80", est)
	}
}

func TestAnnealerBatchAcrossModulations(t *testing.T) {
	a, err := NewAnnealer("qpu0", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// BPSK×4 and QPSK×2 both reduce to N = 4 spins: batch-compatible.
	ins := []*mimo.Instance{
		testInstance(t, 21, modulation.BPSK, 4),
		testInstance(t, 22, modulation.QPSK, 2),
		testInstance(t, 23, modulation.BPSK, 4),
	}
	ps := make([]*Problem, len(ins))
	for i, in := range ins {
		ps[i] = problemOf(in)
	}
	if slots := a.BatchSlots(ps[0]); slots < len(ps) {
		t.Fatalf("BatchSlots = %d, need ≥ %d for this test", slots, len(ps))
	}
	results, err := a.SolveBatch(context.Background(), ps, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if errs := ins[i].BitErrors(res.Bits); errs != 0 {
			t.Errorf("batched problem %d: %d bit errors", i, errs)
		}
		if res.Batched != len(ps) {
			t.Errorf("problem %d: Batched = %d, want %d", i, res.Batched, len(ps))
		}
	}
}

func TestAnnealerBatchRejectsMixedSizes(t *testing.T) {
	a, err := NewAnnealer("qpu0", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ps := []*Problem{
		problemOf(testInstance(t, 31, modulation.BPSK, 4)),
		problemOf(testInstance(t, 32, modulation.BPSK, 6)),
	}
	if _, err := a.SolveBatch(context.Background(), ps, rng.New(3)); err == nil {
		t.Fatal("mixed logical sizes accepted into one batch")
	}
}

func TestClassicalSASolve(t *testing.T) {
	c := NewClassicalSA("sa", 128, 60)
	in := testInstance(t, 41, modulation.QPSK, 4)
	p := problemOf(in)
	res, err := c.Solve(context.Background(), p, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if errs := in.BitErrors(res.Bits); errs != 0 {
		t.Fatalf("SA backend: %d bit errors on a noise-free channel", errs)
	}
	if res.Backend != "sa" {
		t.Fatalf("backend name %q", res.Backend)
	}
	if est := c.Describe().PredictMicros(p); est <= 0 {
		t.Fatalf("PredictMicros = %g", est)
	}
}

func TestSphereSolveAndAdaptiveEstimate(t *testing.T) {
	s := NewSphere("sphere", 0)
	in := testInstance(t, 51, modulation.QPSK, 4)
	p := problemOf(in)
	if est := s.Describe().PredictMicros(p); est != s.PriorMicros {
		t.Fatalf("cold estimate %g, want prior %g", est, s.PriorMicros)
	}
	res, err := s.Solve(context.Background(), p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if errs := in.BitErrors(res.Bits); errs != 0 {
		t.Fatalf("sphere backend: %d bit errors (exact ML on noise-free channel)", errs)
	}
	if est := s.Describe().PredictMicros(p); est == s.PriorMicros {
		t.Fatal("estimate not updated from measurement")
	}
}

func TestSolveHonorsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := testInstance(t, 61, modulation.BPSK, 4)
	a, err := NewAnnealer("qpu0", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Solve(ctx, problemOf(in), rng.New(6)); err == nil {
		t.Fatal("canceled context accepted")
	}
	if _, err := NewClassicalSA("sa", 8, 2).Solve(ctx, problemOf(in), rng.New(7)); err == nil {
		t.Fatal("canceled context accepted")
	}
}

// A ChannelKey-tagged problem must route through the compiled-channel path,
// produce a result bit-identical to the recompiling path, and register cache
// traffic; repeated symbols of the window must hit.
func TestAnnealerSolveCompiledChannel(t *testing.T) {
	a, err := NewAnnealer("qpu0", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	in := testInstance(t, 77, modulation.QPSK, 4)
	plain := problemOf(in)
	keyed := problemOf(in)
	keyed.ChannelKey = core.FingerprintChannel(in.Mod, in.H)

	want, err := a.Solve(context.Background(), plain, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Solve(context.Background(), keyed, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Bits) != string(want.Bits) || got.Energy != want.Energy {
		t.Fatalf("compiled solve diverged: %+v vs %+v", got, want)
	}
	if st := a.ChannelCacheStats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("cache stats after first window symbol: %+v", st)
	}
	// Second symbol of the same window: cache hit.
	if _, err := a.Solve(context.Background(), keyed, rng.New(10)); err != nil {
		t.Fatal(err)
	}
	if st := a.ChannelCacheStats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("cache stats after second window symbol: %+v", st)
	}
}

// A batch of keyed problems must ride the compiled shared run and match the
// unkeyed batch exactly.
func TestAnnealerBatchCompiledChannel(t *testing.T) {
	a, err := NewAnnealer("qpu0", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ins := []*mimo.Instance{
		testInstance(t, 81, modulation.QPSK, 2),
		testInstance(t, 82, modulation.QPSK, 2),
	}
	if slots := a.BatchSlots(problemOf(ins[0])); slots < 2 {
		t.Skipf("only %d slots", slots)
	}
	plain := []*Problem{problemOf(ins[0]), problemOf(ins[1])}
	keyed := []*Problem{problemOf(ins[0]), problemOf(ins[1])}
	for i, p := range keyed {
		p.ChannelKey = core.FingerprintChannel(ins[i].Mod, ins[i].H)
	}
	want, err := a.SolveBatch(context.Background(), plain, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.SolveBatch(context.Background(), keyed, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if string(got[i].Bits) != string(want[i].Bits) || got[i].Energy != want[i].Energy {
			t.Fatalf("batched compiled solve %d diverged", i)
		}
		if errs := ins[i].BitErrors(got[i].Bits); errs != 0 {
			t.Fatalf("batched compiled solve %d: %d bit errors", i, errs)
		}
	}
}
