// Package backend defines the pluggable solver interface of the data-center
// side of the C-RAN architecture. The paper runs every uplink decode on one
// quantum annealer; follow-up work (Kim et al., arXiv:2010.00682) argues the
// data center is really a *hybrid* classical–quantum structure that routes
// each problem to whichever solver meets its deadline. A Backend is one such
// solver: the simulated QPU (Annealer), logical-space simulated annealing
// (ClassicalSA), or the exact sphere decoder (Sphere). The pool scheduler in
// internal/sched owns a set of Backends and dispatches decode problems across
// them.
package backend

import (
	"context"

	"quamax/internal/anneal"
	"quamax/internal/core"
	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/rng"
)

// Problem is one ML MIMO detection problem: decode the transmitted symbols
// from the received vector Y through the estimated channel H. It is the unit
// of work the scheduler queues and a Backend solves.
type Problem struct {
	// Mod is the modulation; H the estimated channel; Y the received vector.
	Mod modulation.Modulation
	H   *linalg.Mat
	Y   []complex128
	// TargetBER is the AP's QoS target for this decode (0 = none). The
	// scheduler's planner turns it into an anneal budget; backends themselves
	// do not interpret it.
	TargetBER float64
	// Anneal, when non-nil, overrides the annealer backend's default run
	// knobs for this problem — the per-request anneal budget the QoS planner
	// sizes (reads, anneal time, pause). Classical backends ignore it.
	Anneal *anneal.Params
	// PT, when non-nil, overrides the parallel-tempering backend's run knobs
	// for this problem — the per-request replica-exchange budget (ladders,
	// rungs, sweeps) the QoS planner sizes against the deadline. Other
	// backends ignore it.
	PT *anneal.PTParams
	// ChainJF, when positive, overrides the annealer backend's ferromagnetic
	// chain strength |J_F| for this problem, so the run matches the operating
	// point the planner's TTS table was fitted at (e.g. 16-QAM fits want
	// far stronger chains than the BPSK default). Classical backends ignore
	// it.
	ChainJF float64
	// Reverse selects reverse annealing seeded from a linear detector
	// (planner's call when the fitted reverse operating point needs fewer
	// reads). Annealer backends fall back to a forward anneal when the seed
	// cannot be computed; classical backends ignore it.
	Reverse bool
	// ChannelKey, when nonzero, tags this problem as part of a channel-
	// coherence window: all problems carrying the same key observe the same
	// (Mod, H) and differ only in Y. The scheduler uses it to gather
	// same-window symbols onto an already-programmed backend, and annealer
	// backends decode keyed problems through their compiled-channel cache
	// (compile H once, rewrite biases per symbol). Equal keys must mean
	// identical channels; core.FingerprintChannel is the canonical producer.
	// Classical backends ignore it.
	ChannelKey core.ChannelKey
	// Soft requests per-bit LLRs alongside the hard decision (Result.LLRs):
	// annealer backends retain the read ensemble (internal/softout),
	// classical single-solution backends answer with saturated ±clamp LLRs.
	// Soft problems batch freely with hard ones — the ensemble is per
	// embedding slot — so batching needs no Soft compatibility rule.
	Soft bool
	// NoiseVar is the per-antenna complex noise variance σ² scaling LLRs on
	// soft problems (0 leaves energies unscaled). Hard problems ignore it.
	NoiseVar float64
	// LLRClamp bounds |LLR| on soft problems (0 = softout.DefaultClamp).
	LLRClamp float64
}

// Users returns the transmitter count Nt.
func (p *Problem) Users() int { return p.H.Cols }

// LogicalSpins returns N, the Ising variable count the problem reduces to
// (one spin per data bit: Nt · bits-per-symbol). Problems with equal N are
// batch-compatible on the annealer: each fits the same clique-embedding slot.
func (p *Problem) LogicalSpins() int { return p.H.Cols * p.Mod.BitsPerSymbol() }

// Result is one solved problem.
type Result struct {
	// Bits are the decoded, Gray-demapped data bits.
	Bits []byte
	// Energy is the ML metric ‖y − H·v̂‖² of the returned decision (for the
	// annealer this equals the logical Ising energy by construction).
	Energy float64
	// ComputeMicros is the modeled solver compute time: QPU device time
	// Na·(Ta+Tp)/Pf for the annealer, measured wall time for classical
	// backends. Reported to the AP for TTB accounting.
	ComputeMicros float64
	// Backend names the solver that produced this result.
	Backend string
	// Batched is the number of problems that shared the solver run
	// (1 for a solo run).
	Batched int
	// LLRs are the per-bit log-likelihood ratios of a soft decode
	// (Problem.Soft; positive favors bit 1 — the internal/softout
	// convention); nil on hard decodes.
	LLRs []float64
	// LLRSaturated counts the LLR entries that hit the clamp (soft decodes
	// only) — aggregated into metrics.PoolStats.LLRSaturations.
	LLRSaturated int
	// CompileMicros is the wall time this solve spent compiling (or looking
	// up) the problem's channel program; nonzero only on compiled-channel
	// paths (Problem.ChannelKey). CacheHit reports whether that lookup was
	// served from the compiled-channel cache. Both feed the telemetry
	// plane's StageCompile span.
	CompileMicros float64
	CacheHit      bool
	// Reads is the run's read budget (anneal count) and BrokenChains the
	// total broken logical chains across those reads — the per-solve
	// anneal-quality sample the scheduler replays into the solver-health
	// plane (internal/health) with backend attribution. Classical backends
	// leave both zero (no chains to break).
	Reads        int
	BrokenChains int
}

// Backend is a pluggable solver. Implementations must be safe for concurrent
// Solve calls (the scheduler may run one instance behind several workers) and
// must honor ctx cancellation at least between coarse solve phases.
type Backend interface {
	// Describe returns the backend's capability descriptor: identity,
	// latency model, per-solve economics, batch geometry and feature set.
	// The returned pointer is stable for the backend's lifetime and must be
	// treated as read-only; every dispatch decision (deadline projection,
	// cost-aware routing, stats attribution) flows through it.
	Describe() *Capabilities
	// Solve decodes one problem. src drives any stochastic component and is
	// owned by the caller (typically a per-worker stream).
	Solve(ctx context.Context, p *Problem, src *rng.Source) (*Result, error)
}

// BatchBackend is a Backend that can co-schedule several problems in one
// device run — the annealer, which packs batch-compatible problems into
// disjoint Chimera embedding slots so they share one Na·(Ta+Tp) anneal.
type BatchBackend interface {
	Backend
	// BatchSlots reports how many problems shaped like p fit one run
	// (≥ 1; 1 means batching degenerates to Solve).
	BatchSlots(p *Problem) int
	// SolveBatch solves len(ps) batch-compatible problems in one run,
	// returning results in order. All ps must have equal LogicalSpins,
	// satisfy Batchable pairwise, and len(ps) must not exceed BatchSlots.
	// A shared run has one schedule: when problems carry Anneal overrides,
	// the run uses the largest read budget among them.
	SolveBatch(ctx context.Context, ps []*Problem, src *rng.Source) ([]*Result, error)
}

// Batchable reports whether two problems may share one annealer run: equal
// logical spin count (same embedding-slot shape), no reverse-annealing
// request (reverse runs are seeded per problem), equal chain-strength
// override (one |J_F| compiles the whole run), and agreeing anneal
// schedules — both default, or overrides with the same per-anneal timing
// (read budgets may differ; the shared run takes the max).
func Batchable(a, b *Problem) bool {
	if a.LogicalSpins() != b.LogicalSpins() || a.Reverse || b.Reverse {
		return false
	}
	if a.ChainJF != b.ChainJF {
		return false
	}
	if (a.Anneal == nil) != (b.Anneal == nil) {
		return false
	}
	if a.Anneal != nil {
		pa, pb := *a.Anneal, *b.Anneal
		if pa.AnnealTimeMicros != pb.AnnealTimeMicros ||
			pa.PauseTimeMicros != pb.PauseTimeMicros ||
			pa.PausePosition != pb.PausePosition {
			return false
		}
	}
	return true
}
