package backend

import (
	"context"
	"testing"

	"quamax/internal/modulation"
	"quamax/internal/rng"
	"quamax/internal/softout"
)

// softMod is the modulation the soft backend tests run at.
const softMod = modulation.QPSK

// TestAnnealerSolveSoft checks the solo soft path: LLRs present, lengths
// right, hard bits identical to the hard decode on the same stream.
func TestAnnealerSolveSoft(t *testing.T) {
	a, err := NewAnnealer("qpu0", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	in := testInstance(t, 61, softMod, 4)
	hardP := problemOf(in)
	softP := problemOf(in)
	softP.Soft = true
	softP.NoiseVar = in.NoiseVariance()

	hard, err := a.Solve(context.Background(), hardP, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAnnealer("qpu1", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	soft, err := b.Solve(context.Background(), softP, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if string(hard.Bits) != string(soft.Bits) {
		t.Fatal("soft request changed the hard decision")
	}
	if hard.LLRs != nil {
		t.Fatal("hard solve returned LLRs")
	}
	if len(soft.LLRs) != len(soft.Bits) {
		t.Fatalf("%d LLRs for %d bits", len(soft.LLRs), len(soft.Bits))
	}
	for k, llr := range soft.LLRs {
		if llr > 0 && soft.Bits[k] != 1 || llr < 0 && soft.Bits[k] != 0 {
			t.Fatalf("bit %d: LLR %g disagrees with hard bit %d", k, llr, soft.Bits[k])
		}
	}
}

// TestAnnealerBatchMixesSoftAndHard proves Batchable needs no Soft rule:
// soft and hard problems share one run, and only the soft one gets LLRs.
func TestAnnealerBatchMixesSoftAndHard(t *testing.T) {
	a, err := NewAnnealer("qpu0", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	inA := testInstance(t, 71, softMod, 4)
	inB := testInstance(t, 72, softMod, 4)
	softP := problemOf(inA)
	softP.Soft = true
	softP.NoiseVar = inA.NoiseVariance()
	hardP := problemOf(inB)
	if !Batchable(softP, hardP) {
		t.Fatal("soft and hard problems of equal shape must be batchable")
	}
	results, err := a.SolveBatch(context.Background(), []*Problem{softP, hardP}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].LLRs == nil {
		t.Fatal("soft batch item lost its LLRs")
	}
	if results[1].LLRs != nil {
		t.Fatal("hard batch item grew LLRs")
	}
}

// TestAnnealerSoftReverseFallsForward checks a soft+reverse problem solves
// (forward) instead of erroring, and still carries LLRs.
func TestAnnealerSoftReverseFallsForward(t *testing.T) {
	a, err := NewAnnealer("qpu0", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	in := testInstance(t, 81, softMod, 4)
	p := problemOf(in)
	p.Soft = true
	p.Reverse = true
	res, err := a.Solve(context.Background(), p, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.LLRs == nil {
		t.Fatal("soft reverse request returned no LLRs")
	}
}

// TestClassicalSoftSaturates checks the classical backends answer soft
// requests with fully saturated LLRs matching their hard decision.
func TestClassicalSoftSaturates(t *testing.T) {
	in := testInstance(t, 91, softMod, 4)
	for _, be := range []Backend{
		NewClassicalSA("sa", 64, 40),
		NewSphere("sphere", 1<<18),
	} {
		p := problemOf(in)
		p.Soft = true
		p.LLRClamp = 8
		res, err := be.Solve(context.Background(), p, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.LLRs) != len(res.Bits) || res.LLRSaturated != len(res.Bits) {
			t.Fatalf("%s: LLRs %d, saturated %d, bits %d",
				be.Describe().Name, len(res.LLRs), res.LLRSaturated, len(res.Bits))
		}
		for k, llr := range res.LLRs {
			want := -8.0
			if res.Bits[k] == 1 {
				want = 8
			}
			if llr != want {
				t.Fatalf("%s bit %d: LLR %g, want %g", be.Describe().Name, k, llr, want)
			}
		}
		// The saturated soft answer must reproduce the hard decision.
		got := softout.HardDecisions(res.LLRs)
		if string(got) != string(res.Bits) {
			t.Fatalf("%s: saturated LLRs do not slice back to the hard bits", be.Describe().Name)
		}
	}
}
