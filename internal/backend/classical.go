package backend

import (
	"context"
	"sync"
	"time"

	"quamax/internal/detector"
	"quamax/internal/rng"
	"quamax/internal/softout"
)

// fillClassicalSoft completes a classical single-solution result for a soft
// problem: one candidate means every bit is "certain", so the LLRs saturate
// to ±clamp from the hard decision (softout.Saturated) and every entry
// counts as saturated. Feeding these to the soft Viterbi provably reproduces
// hard-decision decoding, so a soft request that falls back to a classical
// solver degrades gracefully instead of failing.
func fillClassicalSoft(p *Problem, res *Result) {
	if !p.Soft {
		return
	}
	res.LLRs = softout.Saturated(res.Bits, p.LLRClamp)
	res.LLRSaturated = len(res.LLRs)
}

// ClassicalSA adapts the logical-space simulated-annealing baseline
// (internal/detector) to the Backend interface — the software solver a data
// center can run today on a conventional CPU (§6), and the natural deadline
// fallback of a hybrid pool: its latency is a deterministic function of the
// configured effort, with no queue behind a scarce chip.
type ClassicalSA struct {
	name string
	// SA holds the annealing effort knobs; mutate before first use only.
	SA *detector.ClassicalSA
	// MicrosPerSpinSweep calibrates the latency model: one Metropolis update
	// of one spin costs about this much wall time. The default is measured
	// on the bench harness; it only steers admission, not correctness.
	MicrosPerSpinSweep float64

	caps *Capabilities
}

// DefaultMicrosPerSpinSweep is the measured per-spin-update cost of the SA
// inner loop on a current x86 core (see BenchmarkClassicalSA).
const DefaultMicrosPerSpinSweep = 0.004

// NewClassicalSA builds the SA backend with the given effort (restarts ≈ Na
// for parity with the QPU, per detector.NewClassicalSA).
func NewClassicalSA(name string, sweeps, restarts int) *ClassicalSA {
	c := &ClassicalSA{
		name:               name,
		SA:                 detector.NewClassicalSA(sweeps, restarts),
		MicrosPerSpinSweep: DefaultMicrosPerSpinSweep,
	}
	c.caps = &Capabilities{
		Name:          name,
		Latency:       c.estimate,
		Cost:          DefaultClassicalCostModel,
		MaxBatchSlots: 1,
		Features:      FeatureSoft,
	}
	return c
}

// Describe implements Backend: a conventional single-solution CPU solver,
// priced at the classical core cost model, answering soft requests with
// saturated LLRs.
func (c *ClassicalSA) Describe() *Capabilities { return c.caps }

// estimate is the descriptor's latency hook, modeling the deterministic SA
// cost: sweeps × restarts × N spin updates. The quadratic local-field cost
// in N is folded into the per-spin constant at the pool's typical sizes.
func (c *ClassicalSA) estimate(p *Problem) float64 {
	n := float64(p.LogicalSpins())
	return float64(c.SA.Sweeps) * float64(c.SA.Restarts) * n * c.MicrosPerSpinSweep * (1 + n/16)
}

// Solve anneals the problem's logical Ising form directly.
func (c *ClassicalSA) Solve(ctx context.Context, p *Problem, src *rng.Source) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := c.SA.Decode(p.Mod, p.H, p.Y, src)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Bits:          res.Bits,
		Energy:        res.Metric,
		ComputeMicros: float64(time.Since(start)) / float64(time.Microsecond),
		Backend:       c.name,
		Batched:       1,
	}
	fillClassicalSoft(p, out)
	return out, nil
}

// Sphere adapts the exact Schnorr–Euchner sphere decoder (§2.1) to the
// Backend interface: the throughput-optimal classical reference whose
// latency is input-dependent (exponential worst case, Table 1). Because no
// closed-form cost model exists, the descriptor's latency hook is a measured
// exponential moving average per problem shape, seeded with PriorMicros.
type Sphere struct {
	name string
	// Opts tune the underlying search; set MaxVisitedNodes to bound
	// worst-case latency (exhausted searches return the best leaf found).
	Opts detector.SphereOptions
	// PriorMicros seeds the latency estimate before any measurement.
	PriorMicros float64

	caps *Capabilities

	mu   sync.Mutex
	ewma map[sphereKey]float64
}

type sphereKey struct {
	mod   byte
	users int
}

// NewSphere builds the sphere-decoder backend. maxVisitedNodes bounds each
// search (0 = unlimited — beware exponential tails at low SNR).
func NewSphere(name string, maxVisitedNodes int) *Sphere {
	s := &Sphere{
		name:        name,
		Opts:        detector.SphereOptions{MaxVisitedNodes: maxVisitedNodes},
		PriorMicros: 500,
		ewma:        make(map[sphereKey]float64),
	}
	s.caps = &Capabilities{
		Name:          name,
		Latency:       s.estimate,
		Cost:          DefaultClassicalCostModel,
		MaxBatchSlots: 1,
		Features:      FeatureSoft,
	}
	return s
}

// Describe implements Backend: the exact classical reference solver, priced
// at the classical core cost model, answering soft requests with saturated
// LLRs.
func (s *Sphere) Describe() *Capabilities { return s.caps }

// estimate is the descriptor's latency hook: the moving-average measured
// latency for this problem shape, or the prior if the shape has not been
// solved yet.
func (s *Sphere) estimate(p *Problem) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if est, ok := s.ewma[sphereKey{byte(p.Mod), p.Users()}]; ok {
		return est
	}
	return s.PriorMicros
}

// Solve runs the exact tree search and folds the measured latency back into
// the estimate (EWMA, α = 1/4).
func (s *Sphere) Solve(ctx context.Context, p *Problem, src *rng.Source) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := detector.SphereDecode(p.Mod, p.H, p.Y, s.Opts)
	elapsed := float64(time.Since(start)) / float64(time.Microsecond)
	key := sphereKey{byte(p.Mod), p.Users()}
	s.mu.Lock()
	if old, ok := s.ewma[key]; ok {
		s.ewma[key] = old + (elapsed-old)/4
	} else {
		s.ewma[key] = elapsed
	}
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	out := &Result{
		Bits:          res.Bits,
		Energy:        res.Metric,
		ComputeMicros: elapsed,
		Backend:       s.name,
		Batched:       1,
	}
	fillClassicalSoft(p, out)
	return out, nil
}
