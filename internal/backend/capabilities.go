package backend

import "math"

// Features is a bitmask of optional solver abilities a backend declares in
// its Capabilities descriptor. The scheduler and QoS planner consult it
// instead of type-asserting on concrete backend types.
type Features uint32

// The feature bits. A backend advertises the union of everything it can do;
// absence of a bit means requests needing that ability must route elsewhere.
const (
	// FeatureBatch marks backends that co-schedule batch-compatible problems
	// into one device run (they also implement BatchBackend).
	FeatureBatch Features = 1 << iota
	// FeatureReverse marks backends that honor Problem.Reverse (reverse
	// annealing seeded from a linear detector).
	FeatureReverse
	// FeatureSoft marks backends that can answer Problem.Soft requests with
	// per-bit LLRs (possibly saturated, for single-solution solvers).
	FeatureSoft
	// FeaturePT marks backends that honor Problem.PT replica-exchange
	// budgets.
	FeaturePT
	// FeatureQuantum marks quantum (or simulated-quantum) hardware whose
	// reads the QoS planner sizes from its TTS tables; its absence marks a
	// conventional classical solver.
	FeatureQuantum
)

// Has reports whether every bit in q is set in f.
func (f Features) Has(q Features) bool { return f&q == q }

// CostModel prices a backend's compute, the per-solve economics Kasi et al.
// (arXiv:2109.01465) argue decide annealer viability in NextG data centers.
// Spend is charged as a fixed per-solve component plus a marginal rate on
// device occupancy; energy is drawn at a constant device power while solving.
type CostModel struct {
	// SolveMicroUSD is the fixed charge per solve (programming overhead,
	// amortized licensing), in micro-dollars.
	SolveMicroUSD float64
	// MicroUSDPerDeviceSecond is the marginal rate on device occupancy, in
	// micro-dollars per device-second.
	MicroUSDPerDeviceSecond float64
	// PowerWatts is the device's draw while solving (for the annealer this
	// is dominated by the cryostat, so it is charged against occupancy, not
	// against the µs-scale anneal itself).
	PowerWatts float64
}

// DefaultQPUCostModel prices a leased quantum annealer: cloud QPU access at
// roughly $2000 per device-hour (≈ 555,555 µUSD per device-second) and a
// 25 kW cryostat+control-plane wall draw, the operating point of the
// feasibility analysis in Kasi et al.
var DefaultQPUCostModel = CostModel{
	MicroUSDPerDeviceSecond: 555_555,
	PowerWatts:              25_000,
}

// DefaultClassicalCostModel prices one conventional CPU core: about
// $0.05 per core-hour (≈ 13.9 µUSD per device-second) and a 15 W share of
// socket, DRAM and cooling.
var DefaultClassicalCostModel = CostModel{
	MicroUSDPerDeviceSecond: 13.9,
	PowerWatts:              15,
}

// Capabilities is a backend's self-description: identity, latency model,
// per-solve economics, batch geometry and feature set. It replaces the old
// ad-hoc Name()/EstimateMicros() surface — every dispatch decision (deadline
// projection, cost-aware routing, stats attribution) reads this descriptor,
// so no caller outside this package constructs backend identity by hand.
type Capabilities struct {
	// Name identifies the backend in results and pool stats.
	Name string
	// Latency predicts the compute latency of one Solve of p in µs — the
	// quantity the scheduler's deadline-aware dispatch sums into projected
	// queue waits. For the annealer this is modeled device time; classical
	// backends use cost models or measured moving averages. Callers should
	// go through PredictMicros, which guards a nil hook.
	Latency func(p *Problem) float64
	// Cost prices this backend's solves; see CostModel.
	Cost CostModel
	// Qubits is the physical qubit count of quantum hardware (0 for
	// classical backends).
	Qubits int
	// MaxBatchSlots bounds how many problems one device run can carry for
	// the smallest embeddable problem shape (1 = no cross-request batching;
	// per-shape capacity still comes from BatchBackend.BatchSlots).
	MaxBatchSlots int
	// Features declares the solver's optional abilities.
	Features Features
}

// PredictMicros predicts the compute latency of one Solve of p through the
// descriptor's latency hook (0 when no hook is set).
func (c *Capabilities) PredictMicros(p *Problem) float64 {
	if c == nil || c.Latency == nil {
		return 0
	}
	return c.Latency(p)
}

// SpendMicroUSD prices computeMicros of device occupancy on this backend:
// the fixed per-solve charge plus the marginal occupancy rate. Non-finite or
// negative occupancy (a failed measurement) charges only the fixed
// component, so accounting counters never absorb NaN.
func (c *Capabilities) SpendMicroUSD(computeMicros float64) float64 {
	if c == nil {
		return 0
	}
	spend := c.Cost.SolveMicroUSD
	if !math.IsNaN(computeMicros) && !math.IsInf(computeMicros, 0) && computeMicros > 0 {
		spend += c.Cost.MicroUSDPerDeviceSecond * computeMicros / 1e6
	}
	if math.IsNaN(spend) || math.IsInf(spend, 0) || spend < 0 {
		return 0
	}
	return spend
}

// EnergyMilliJ converts computeMicros of occupancy into millijoules at the
// descriptor's device power, with the same non-finite guards as
// SpendMicroUSD.
func (c *Capabilities) EnergyMilliJ(computeMicros float64) float64 {
	if c == nil || math.IsNaN(computeMicros) || math.IsInf(computeMicros, 0) || computeMicros <= 0 {
		return 0
	}
	e := c.Cost.PowerWatts * computeMicros / 1e3
	if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
		return 0
	}
	return e
}
