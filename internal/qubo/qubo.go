// Package qubo defines the two equivalent optimization forms a quantum
// annealer accepts (paper §3.1): the Ising spin-glass form over s ∈ {−1,+1}
// (Eq. 2) and the QUBO form over q ∈ {0,1} (Eq. 3), the exact conversion
// between them (Eq. 4), energy evaluation, and an exhaustive solver used as
// the test oracle and ML ground truth for small problems.
//
// Both forms carry an Offset so that the Ising/QUBO energy of a solution can
// equal the ML decoder's Euclidean metric ‖y−Hv‖² exactly (paper footnote 6:
// "the energy distribution ... corresponds to the distribution of ML decoder
// Euclidean distances").
package qubo

import (
	"fmt"
	"math"
)

// Ising is the spin-glass objective  Σ_{i<j} J_ij s_i s_j + Σ_i H_i s_i + Offset
// with s_i ∈ {−1,+1}. Couplings are stored densely upper-triangular.
//
// Mutate couplings through SetJ/AddJ only: they maintain a sparse index of
// structurally-nonzero entries that Clone and MaxAbsCoefficient use to skip
// the (typically mostly-zero) dense triangle. Fields (H) and Offset may be
// written directly.
type Ising struct {
	N      int
	H      []float64 // linear fields f_i, len N
	J      []float64 // upper-triangular couplings g_ij (i<j), len N(N−1)/2
	Offset float64

	// nz indexes the entries of J that have ever been set nonzero (a
	// superset of the currently-nonzero entries: clearing a coupling leaves
	// a stale zero, which is harmless to every consumer).
	nz []int32
}

// NewIsing returns a zero Ising problem over n spins.
func NewIsing(n int) *Ising {
	if n < 0 {
		panic("qubo: negative size")
	}
	return &Ising{N: n, H: make([]float64, n), J: make([]float64, n*(n-1)/2)}
}

// jIdx maps an (i,j) pair with i<j to the flat upper-triangular index.
func (p *Ising) jIdx(i, j int) int {
	if i >= j || j >= p.N || i < 0 {
		panic(fmt.Sprintf("qubo: bad coupling index (%d,%d) for N=%d", i, j, p.N))
	}
	// Row i starts after i rows of decreasing length: i*N − i(i+1)/2.
	return i*p.N - i*(i+1)/2 + (j - i - 1)
}

// jCoords inverts jIdx: the (i, j) spin pair of flat upper-triangular
// index k.
func (p *Ising) jCoords(k int) (int, int) {
	i, rowStart := 0, 0
	for {
		rowLen := p.N - i - 1
		if k < rowStart+rowLen {
			return i, k - rowStart + i + 1
		}
		rowStart += rowLen
		i++
	}
}

// SetJ sets the coupling between spins i and j (order-insensitive).
func (p *Ising) SetJ(i, j int, v float64) {
	if i > j {
		i, j = j, i
	}
	k := p.jIdx(i, j)
	if p.J[k] == 0 && v != 0 {
		p.nz = append(p.nz, int32(k))
	}
	p.J[k] = v
}

// AddJ accumulates into the coupling between spins i and j.
func (p *Ising) AddJ(i, j int, v float64) {
	if i > j {
		i, j = j, i
	}
	k := p.jIdx(i, j)
	if p.J[k] == 0 && v != 0 {
		p.nz = append(p.nz, int32(k))
	}
	p.J[k] += v
}

// GetJ returns the coupling between spins i and j (0 if i == j).
func (p *Ising) GetJ(i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	return p.J[p.jIdx(i, j)]
}

// Energy evaluates the Ising objective for a spin assignment (±1 entries).
func (p *Ising) Energy(s []int8) float64 {
	if len(s) != p.N {
		panic("qubo: spin vector length mismatch")
	}
	e := p.Offset
	for i := 0; i < p.N; i++ {
		e += p.H[i] * float64(s[i])
	}
	k := 0
	for i := 0; i < p.N; i++ {
		si := float64(s[i])
		for j := i + 1; j < p.N; j++ {
			e += p.J[k] * si * float64(s[j])
			k++
		}
	}
	return e
}

// MaxAbsCoefficient returns max(|H_i|, |J_ij|), the scale used when fitting a
// problem into the annealer's analog range. Only the sparse-indexed couplings
// are scanned — never-set entries are structurally zero and cannot raise the
// maximum.
func (p *Ising) MaxAbsCoefficient() float64 {
	var m float64
	for _, v := range p.H {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	for _, k := range p.nz {
		if a := math.Abs(p.J[k]); a > m {
			m = a
		}
	}
	return m
}

// Clone deep-copies the problem. Couplings are copied through the sparse
// index, so cloning a problem with few couplings does not pay for the dense
// zero triangle.
func (p *Ising) Clone() *Ising {
	c := NewIsing(p.N)
	copy(c.H, p.H)
	for _, k := range p.nz {
		c.J[k] = p.J[k]
	}
	c.nz = append([]int32(nil), p.nz...)
	c.Offset = p.Offset
	return c
}

// SharedCouplings returns a new Ising over the same spins that SHARES p's
// coupling storage (J and its sparse index) but carries fresh zero fields and
// a zero offset. It is the execute-phase primitive of the compile/execute
// split in internal/reduction: the channel-dependent couplings are built
// once, and each received vector only rewrites fields and offset. Neither
// problem may call SetJ/AddJ after sharing.
func (p *Ising) SharedCouplings() *Ising {
	return &Ising{N: p.N, H: make([]float64, p.N), J: p.J, nz: p.nz}
}

// QUBO is the binary objective  Σ_{i≤j} Q_ij q_i q_j + Offset with
// q_i ∈ {0,1}. Q is stored densely upper-triangular including the diagonal.
type QUBO struct {
	N      int
	Q      []float64 // upper-triangular including diagonal, len N(N+1)/2
	Offset float64
}

// NewQUBO returns a zero QUBO over n variables.
func NewQUBO(n int) *QUBO {
	if n < 0 {
		panic("qubo: negative size")
	}
	return &QUBO{N: n, Q: make([]float64, n*(n+1)/2)}
}

// qIdx maps (i,j) with i≤j to the flat index.
func (q *QUBO) qIdx(i, j int) int {
	if i > j || j >= q.N || i < 0 {
		panic(fmt.Sprintf("qubo: bad QUBO index (%d,%d) for N=%d", i, j, q.N))
	}
	return i*q.N - i*(i-1)/2 + (j - i)
}

// Set assigns Q_ij (order-insensitive).
func (q *QUBO) Set(i, j int, v float64) {
	if i > j {
		i, j = j, i
	}
	q.Q[q.qIdx(i, j)] = v
}

// Add accumulates into Q_ij.
func (q *QUBO) Add(i, j int, v float64) {
	if i > j {
		i, j = j, i
	}
	q.Q[q.qIdx(i, j)] += v
}

// Get returns Q_ij.
func (q *QUBO) Get(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	return q.Q[q.qIdx(i, j)]
}

// Energy evaluates the QUBO objective for a 0/1 assignment.
func (q *QUBO) Energy(bits []byte) float64 {
	if len(bits) != q.N {
		panic("qubo: bit vector length mismatch")
	}
	e := q.Offset
	k := 0
	for i := 0; i < q.N; i++ {
		if bits[i] == 0 {
			k += q.N - i
			continue
		}
		for j := i; j < q.N; j++ {
			if bits[j] != 0 {
				e += q.Q[k]
			}
			k++
		}
	}
	return e
}

// ToIsing converts via Eq. 4 (q_i ↔ (s_i+1)/2), preserving energies exactly:
// Energy_QUBO(bits) == Energy_Ising(SpinsFromBits(bits)) for every assignment.
func (q *QUBO) ToIsing() *Ising {
	p := NewIsing(q.N)
	p.Offset = q.Offset
	for i := 0; i < q.N; i++ {
		qii := q.Get(i, i)
		p.H[i] += qii / 2
		p.Offset += qii / 2
		for j := i + 1; j < q.N; j++ {
			qij := q.Get(i, j)
			if qij == 0 {
				continue
			}
			p.AddJ(i, j, qij/4)
			p.H[i] += qij / 4
			p.H[j] += qij / 4
			p.Offset += qij / 4
		}
	}
	return p
}

// ToQUBO converts via s_i = 2q_i − 1, preserving energies exactly.
func (p *Ising) ToQUBO() *QUBO {
	q := NewQUBO(p.N)
	q.Offset = p.Offset
	for i := 0; i < p.N; i++ {
		q.Add(i, i, 2*p.H[i])
		q.Offset -= p.H[i]
		for j := i + 1; j < p.N; j++ {
			jij := p.GetJ(i, j)
			if jij == 0 {
				continue
			}
			q.Add(i, j, 4*jij)
			q.Add(i, i, -2*jij)
			q.Add(j, j, -2*jij)
			q.Offset += jij
		}
	}
	return q
}

// SpinsFromBits maps 0/1 bits to ±1 spins (0→−1, 1→+1), Eq. 4.
func SpinsFromBits(bits []byte) []int8 {
	s := make([]int8, len(bits))
	for i, b := range bits {
		if b != 0 {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	return s
}

// BitsFromSpins maps ±1 spins to 0/1 bits (−1→0, +1→1).
func BitsFromSpins(s []int8) []byte {
	b := make([]byte, len(s))
	for i, v := range s {
		if v > 0 {
			b[i] = 1
		}
	}
	return b
}

// MaxBruteForceN bounds the exhaustive solver (2^24 states ≈ 16M).
const MaxBruteForceN = 24

// BruteForceIsing exhaustively minimizes the Ising objective and returns the
// ground-state spins and energy. It walks assignments in Gray-code order so
// each step is an O(N) incremental energy update. Panics for N > MaxBruteForceN.
func BruteForceIsing(p *Ising) ([]int8, float64) {
	if p.N > MaxBruteForceN {
		panic("qubo: problem too large for brute force")
	}
	s := make([]int8, p.N)
	for i := range s {
		s[i] = -1
	}
	e := p.Energy(s)
	best := append([]int8(nil), s...)
	bestE := e

	total := uint64(1) << uint(p.N)
	for step := uint64(1); step < total; step++ {
		// Gray code: flip the index of the lowest set bit of step.
		k := trailingZeros(step)
		// ΔE when flipping spin k: E' − E = −2 s_k (H_k + Σ_j J_kj s_j).
		local := p.H[k]
		for j := 0; j < p.N; j++ {
			if j == k {
				continue
			}
			local += p.GetJ(k, j) * float64(s[j])
		}
		e -= 2 * float64(s[k]) * local
		s[k] = -s[k]
		if e < bestE {
			bestE = e
			copy(best, s)
		}
	}
	return best, bestE
}

// BruteForceQUBO exhaustively minimizes the QUBO objective.
func BruteForceQUBO(q *QUBO) ([]byte, float64) {
	s, e := BruteForceIsing(q.ToIsing())
	return BitsFromSpins(s), e
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}
