package qubo

import (
	"math"
	"testing"
	"testing/quick"

	"quamax/internal/rng"
)

func randIsing(src *rng.Source, n int) *Ising {
	p := NewIsing(n)
	for i := range p.H {
		p.H[i] = src.Gauss(0, 1)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p.SetJ(i, j, src.Gauss(0, 1))
		}
	}
	p.Offset = src.Gauss(0, 1)
	return p
}

func randQUBO(src *rng.Source, n int) *QUBO {
	q := NewQUBO(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			q.Set(i, j, src.Gauss(0, 1))
		}
	}
	q.Offset = src.Gauss(0, 1)
	return q
}

func allBits(n int, fn func(bits []byte)) {
	bits := make([]byte, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := range bits {
			bits[i] = byte(mask >> i & 1)
		}
		fn(bits)
	}
}

func TestIsingEnergyKnown(t *testing.T) {
	// E = J12·s1·s2 + H1·s1 + H2·s2 with J12=2, H1=1, H2=−3.
	p := NewIsing(2)
	p.SetJ(0, 1, 2)
	p.H[0], p.H[1] = 1, -3
	if got := p.Energy([]int8{1, 1}); got != 0 {
		t.Fatalf("E(+,+) = %g, want 0", got)
	}
	if got := p.Energy([]int8{-1, 1}); got != -6 {
		t.Fatalf("E(−,+) = %g, want -6", got)
	}
	if got := p.Energy([]int8{1, -1}); got != 2 {
		t.Fatalf("E(+,−) = %g, want 2", got)
	}
}

func TestQUBOEnergyKnown(t *testing.T) {
	q := NewQUBO(2)
	q.Set(0, 0, -1)
	q.Set(1, 1, 2)
	q.Set(0, 1, -4)
	if got := q.Energy([]byte{1, 1}); got != -3 {
		t.Fatalf("E(1,1) = %g, want -3", got)
	}
	if got := q.Energy([]byte{1, 0}); got != -1 {
		t.Fatalf("E(1,0) = %g, want -1", got)
	}
	if got := q.Energy([]byte{0, 0}); got != 0 {
		t.Fatalf("E(0,0) = %g, want 0", got)
	}
}

func TestGetSetOrderInsensitive(t *testing.T) {
	p := NewIsing(4)
	p.SetJ(3, 1, 5)
	if p.GetJ(1, 3) != 5 || p.GetJ(3, 1) != 5 {
		t.Fatal("J should be symmetric in index order")
	}
	if p.GetJ(2, 2) != 0 {
		t.Fatal("self-coupling must be 0")
	}
	q := NewQUBO(4)
	q.Set(3, 0, 7)
	if q.Get(0, 3) != 7 {
		t.Fatal("Q should be symmetric in index order")
	}
}

// Eq. 4 equivalence: QUBO→Ising preserves the energy of EVERY assignment.
func TestQUBOToIsingEnergyEquivalence(t *testing.T) {
	src := rng.New(41)
	for trial := 0; trial < 20; trial++ {
		n := 1 + src.Intn(8)
		q := randQUBO(src, n)
		p := q.ToIsing()
		allBits(n, func(bits []byte) {
			eq := q.Energy(bits)
			ei := p.Energy(SpinsFromBits(bits))
			if math.Abs(eq-ei) > 1e-9 {
				t.Fatalf("n=%d bits=%v: QUBO %g vs Ising %g", n, bits, eq, ei)
			}
		})
	}
}

func TestIsingToQUBOEnergyEquivalence(t *testing.T) {
	src := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		n := 1 + src.Intn(8)
		p := randIsing(src, n)
		q := p.ToQUBO()
		allBits(n, func(bits []byte) {
			eq := q.Energy(bits)
			ei := p.Energy(SpinsFromBits(bits))
			if math.Abs(eq-ei) > 1e-9 {
				t.Fatalf("n=%d bits=%v: QUBO %g vs Ising %g", n, bits, eq, ei)
			}
		})
	}
}

// Round trip is the identity on energies (property test).
func TestConversionRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		n := 1 + src.Intn(6)
		p := randIsing(src, n)
		rt := p.ToQUBO().ToIsing()
		s := make([]int8, n)
		for i := range s {
			if src.Bool() {
				s[i] = 1
			} else {
				s[i] = -1
			}
		}
		return math.Abs(p.Energy(s)-rt.Energy(s)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpinsBitsRoundTrip(t *testing.T) {
	bits := []byte{0, 1, 1, 0, 1}
	s := SpinsFromBits(bits)
	want := []int8{-1, 1, 1, -1, 1}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("SpinsFromBits = %v", s)
		}
	}
	back := BitsFromSpins(s)
	for i := range bits {
		if back[i] != bits[i] {
			t.Fatalf("round trip = %v", back)
		}
	}
}

// Brute force against full enumeration with direct energy evaluation.
func TestBruteForceIsingMatchesEnumeration(t *testing.T) {
	src := rng.New(43)
	for trial := 0; trial < 15; trial++ {
		n := 1 + src.Intn(10)
		p := randIsing(src, n)
		gotS, gotE := BruteForceIsing(p)

		bestE := math.Inf(1)
		allBits(n, func(bits []byte) {
			if e := p.Energy(SpinsFromBits(bits)); e < bestE {
				bestE = e
			}
		})
		if math.Abs(gotE-bestE) > 1e-9 {
			t.Fatalf("n=%d: brute force E=%g, enumeration E=%g", n, gotE, bestE)
		}
		if math.Abs(p.Energy(gotS)-gotE) > 1e-9 {
			t.Fatalf("returned spins do not reproduce returned energy")
		}
	}
}

func TestBruteForceQUBO(t *testing.T) {
	// min(−q1 − q2 + 3 q1q2) = −1 at (1,0) or (0,1).
	q := NewQUBO(2)
	q.Set(0, 0, -1)
	q.Set(1, 1, -1)
	q.Set(0, 1, 3)
	bits, e := BruteForceQUBO(q)
	if e != -1 {
		t.Fatalf("ground energy %g, want -1", e)
	}
	if bits[0]+bits[1] != 1 {
		t.Fatalf("ground state %v, want exactly one bit set", bits)
	}
}

func TestBruteForceSizeLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized brute force")
		}
	}()
	BruteForceIsing(NewIsing(MaxBruteForceN + 1))
}

func TestMaxAbsCoefficient(t *testing.T) {
	p := NewIsing(3)
	p.H[0] = -5
	p.SetJ(1, 2, 3)
	if got := p.MaxAbsCoefficient(); got != 5 {
		t.Fatalf("MaxAbsCoefficient = %g", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := NewIsing(3)
	p.SetJ(0, 1, 1)
	c := p.Clone()
	c.SetJ(0, 1, 9)
	c.H[0] = 4
	if p.GetJ(0, 1) != 1 || p.H[0] != 0 {
		t.Fatal("Clone aliases the original")
	}
}
