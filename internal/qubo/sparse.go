package qubo

import "fmt"

// SparseEdge is one coupling term of a sparse Ising problem.
type SparseEdge struct {
	I, J int
	W    float64
}

// Sparse is an Ising problem over an arbitrary (typically hardware) graph,
// stored as an explicit edge list. It is the "programmed machine" form: the
// embedding compiler emits a Sparse problem over physical qubits and the
// annealer consumes it.
type Sparse struct {
	N      int
	H      []float64
	Edges  []SparseEdge
	Offset float64
}

// NewSparse returns an empty sparse Ising problem over n spins.
func NewSparse(n int) *Sparse {
	return &Sparse{N: n, H: make([]float64, n)}
}

// SparseFromIsing converts a dense logical Ising program into the edge-list
// form the annealer consumes, carrying fields, couplings and offset over
// verbatim. This is the "full-connectivity chip" programming path (paper §8:
// next-generation topologies shrink or remove minor-embedding): the logical
// problem runs on the machine directly, with no chains. Only the sparse
// index's structurally-nonzero couplings are emitted.
func SparseFromIsing(p *Ising) *Sparse {
	s := NewSparse(p.N)
	copy(s.H, p.H)
	s.Offset = p.Offset
	for _, k := range p.nz {
		if p.J[k] == 0 {
			continue // cleared after being set; structurally stale
		}
		i, j := p.jCoords(int(k))
		s.AddEdge(i, j, p.J[k])
	}
	return s
}

// AddEdge appends a coupling term. Panics on out-of-range or self coupling.
func (s *Sparse) AddEdge(i, j int, w float64) {
	if i == j || i < 0 || j < 0 || i >= s.N || j >= s.N {
		panic(fmt.Sprintf("qubo: bad sparse edge (%d,%d) for N=%d", i, j, s.N))
	}
	if i > j {
		i, j = j, i
	}
	s.Edges = append(s.Edges, SparseEdge{I: i, J: j, W: w})
}

// Energy evaluates the sparse Ising objective.
func (s *Sparse) Energy(spins []int8) float64 {
	if len(spins) != s.N {
		panic("qubo: spin vector length mismatch")
	}
	e := s.Offset
	for i, h := range s.H {
		e += h * float64(spins[i])
	}
	for _, ed := range s.Edges {
		e += ed.W * float64(spins[ed.I]) * float64(spins[ed.J])
	}
	return e
}

// MaxAbsCoefficient returns max(|H_i|, |W_ij|).
func (s *Sparse) MaxAbsCoefficient() float64 {
	var m float64
	for _, v := range s.H {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	for _, e := range s.Edges {
		w := e.W
		if w < 0 {
			w = -w
		}
		if w > m {
			m = w
		}
	}
	return m
}

// ToDense converts to the dense Ising form (for brute-force checks; merges
// duplicate edges by summation).
func (s *Sparse) ToDense() *Ising {
	p := NewIsing(s.N)
	copy(p.H, s.H)
	p.Offset = s.Offset
	for _, e := range s.Edges {
		p.AddJ(e.I, e.J, e.W)
	}
	return p
}

// Clone deep-copies the problem.
func (s *Sparse) Clone() *Sparse {
	c := NewSparse(s.N)
	copy(c.H, s.H)
	c.Edges = append([]SparseEdge(nil), s.Edges...)
	c.Offset = s.Offset
	return c
}
