package qubo

import (
	"math"
	"testing"

	"quamax/internal/rng"
)

// sparseRandIsing sets only a few couplings, leaving the dense triangle
// mostly structurally zero — the shape the sparse index exists for.
func sparseRandIsing(src *rng.Source, n, couplings int) *Ising {
	p := NewIsing(n)
	for i := range p.H {
		p.H[i] = src.Gauss(0, 1)
	}
	for k := 0; k < couplings; k++ {
		i := src.Intn(n - 1)
		j := i + 1 + src.Intn(n-i-1)
		p.SetJ(i, j, src.Gauss(0, 1))
	}
	return p
}

// MaxAbsCoefficient through the sparse index must equal a dense scan.
func TestMaxAbsCoefficientSparseIndex(t *testing.T) {
	src := rng.New(11)
	for trial := 0; trial < 20; trial++ {
		p := sparseRandIsing(src, 2+src.Intn(30), src.Intn(12))
		var want float64
		for _, v := range p.H {
			want = math.Max(want, math.Abs(v))
		}
		for _, v := range p.J {
			want = math.Max(want, math.Abs(v))
		}
		if got := p.MaxAbsCoefficient(); got != want {
			t.Fatalf("trial %d: MaxAbsCoefficient = %g, want %g", trial, got, want)
		}
	}
}

// Clearing a coupling back to zero leaves a stale index entry; it must not
// disturb the maximum, and re-setting must not double-count.
func TestMaxAbsCoefficientAfterClear(t *testing.T) {
	p := NewIsing(4)
	p.SetJ(0, 1, 5)
	p.SetJ(2, 3, 1)
	p.SetJ(0, 1, 0) // clear the dominant coupling
	if got := p.MaxAbsCoefficient(); got != 1 {
		t.Fatalf("MaxAbsCoefficient after clear = %g, want 1", got)
	}
	p.SetJ(0, 1, -3)
	p.AddJ(0, 1, -1)
	if got := p.MaxAbsCoefficient(); got != 4 {
		t.Fatalf("MaxAbsCoefficient after reset = %g, want 4", got)
	}
}

// Clone through the sparse index must reproduce the problem exactly and
// remain fully independent of the original.
func TestCloneSparseIndex(t *testing.T) {
	src := rng.New(12)
	p := sparseRandIsing(src, 16, 8)
	p.Offset = 2.5
	c := p.Clone()
	for i := 0; i < p.N; i++ {
		if c.H[i] != p.H[i] {
			t.Fatalf("H[%d] differs", i)
		}
		for j := i + 1; j < p.N; j++ {
			if c.GetJ(i, j) != p.GetJ(i, j) {
				t.Fatalf("J[%d,%d] differs", i, j)
			}
		}
	}
	if c.Offset != p.Offset {
		t.Fatal("offset differs")
	}
	// Independence both ways, including index maintenance on the clone.
	c.SetJ(0, 15, 9)
	if p.GetJ(0, 15) != 0 {
		t.Fatal("clone mutation leaked into the original")
	}
	if c.MaxAbsCoefficient() < 9 {
		t.Fatal("clone's sparse index missed a post-clone coupling")
	}
	p.SetJ(1, 14, -20)
	if c.GetJ(1, 14) != 0 {
		t.Fatal("original mutation leaked into the clone")
	}
}

// SharedCouplings must alias coupling storage, keep fields independent, and
// evaluate energies consistently with the source problem's couplings.
func TestSharedCouplings(t *testing.T) {
	src := rng.New(13)
	p := sparseRandIsing(src, 10, 6)
	p.Offset = 3
	s := p.SharedCouplings()
	if s.N != p.N {
		t.Fatalf("shared N = %d, want %d", s.N, p.N)
	}
	if &s.J[0] != &p.J[0] {
		t.Fatal("couplings were copied, not shared")
	}
	if s.Offset != 0 {
		t.Fatalf("shared offset = %g, want 0", s.Offset)
	}
	for i, v := range s.H {
		if v != 0 {
			t.Fatalf("shared H[%d] = %g, want 0", i, v)
		}
	}
	// Same couplings ⇒ energy difference between two assignments that agree
	// except through fields/offset tracks the coupling terms identically.
	spins := make([]int8, p.N)
	for i := range spins {
		if src.Bool() {
			spins[i] = 1
		} else {
			spins[i] = -1
		}
	}
	copy(s.H, p.H)
	s.Offset = p.Offset
	if got, want := s.Energy(spins), p.Energy(spins); got != want {
		t.Fatalf("shared energy %g, want %g", got, want)
	}
	if s.MaxAbsCoefficient() != p.MaxAbsCoefficient() {
		t.Fatal("shared sparse index disagrees with the source")
	}
}

// TestSparseFromIsing checks the full-connectivity programming path: the
// edge-list form must evaluate every random spin vector to exactly the dense
// program's energy, and emit only structurally-nonzero couplings.
func TestSparseFromIsing(t *testing.T) {
	src := rng.New(77)
	for trial := 0; trial < 20; trial++ {
		n := 2 + src.Intn(12)
		p := NewIsing(n)
		p.Offset = src.Gauss(0, 2)
		for i := 0; i < n; i++ {
			p.H[i] = src.Gauss(0, 1)
			for j := i + 1; j < n; j++ {
				if src.Float64() < 0.5 {
					p.SetJ(i, j, src.Gauss(0, 1))
				}
			}
		}
		s := SparseFromIsing(p)
		nz := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if p.GetJ(i, j) != 0 {
					nz++
				}
			}
		}
		if len(s.Edges) != nz {
			t.Fatalf("trial %d: %d edges for %d nonzero couplings", trial, len(s.Edges), nz)
		}
		for rep := 0; rep < 10; rep++ {
			spins := make([]int8, n)
			for i := range spins {
				spins[i] = 1
				if src.Bool() {
					spins[i] = -1
				}
			}
			if got, want := s.Energy(spins), p.Energy(spins); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: sparse energy %g != dense %g", trial, got, want)
			}
		}
	}
	// A cleared coupling must not be emitted.
	p := NewIsing(3)
	p.SetJ(0, 1, 2)
	p.SetJ(0, 1, 0)
	p.SetJ(1, 2, 1)
	if s := SparseFromIsing(p); len(s.Edges) != 1 || s.Edges[0].I != 1 || s.Edges[0].J != 2 {
		t.Fatalf("cleared coupling emitted: %+v", s.Edges)
	}
}
