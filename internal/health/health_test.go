package health

import (
	"context"
	"math"
	"testing"
	"time"

	"quamax/internal/backend"
	"quamax/internal/metrics"
	"quamax/internal/rng"
	"quamax/internal/telemetry"
)

// fakeClock is a manually-advanced time source for canary-interval tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testTracker(clk *fakeClock) *Tracker {
	cfg := Config{WindowSize: 8, MinWindow: 4}
	if clk != nil {
		cfg.Now = clk.now
	}
	return NewTracker(cfg)
}

// good and bad are the two quality regimes the drift tests move between:
// a healthy annealer (2% chain breaks, deep ground states) and a drifted
// one (40% chain breaks, best energies collapsed toward zero).
var (
	good = telemetry.QualityObservation{BestEnergy: -10, Reads: 100, ChainBreaks: 2}
	bad  = telemetry.QualityObservation{BestEnergy: -2, Reads: 100, ChainBreaks: 40}
)

func feed(tr *Tracker, name string, q telemetry.QualityObservation, n int) {
	for i := 0; i < n; i++ {
		tr.ObserveQuality(name, "QPSK/4", q)
	}
}

// Drift detection: a backend that starts serving drifted quality walks
// Healthy → Degraded → Quarantined within a handful of observations once
// its reference window is established.
func TestDriftDetectionStateMachine(t *testing.T) {
	tr := testTracker(nil)
	feed(tr, "qpu0", good, 8)
	if got := tr.State("qpu0"); got != metrics.HealthHealthy {
		t.Fatalf("healthy baseline scored %v", got)
	}

	sawDegraded := false
	quarantinedAfter := -1
	for i := 0; i < 10; i++ {
		tr.ObserveQuality("qpu0", "QPSK/4", bad)
		switch tr.State("qpu0") {
		case metrics.HealthDegraded:
			sawDegraded = true
		case metrics.HealthQuarantined:
			quarantinedAfter = i + 1
		}
		if quarantinedAfter > 0 {
			break
		}
	}
	if !sawDegraded {
		t.Error("backend never passed through Degraded")
	}
	if quarantinedAfter < 0 || quarantinedAfter > 5 {
		t.Fatalf("quarantined after %d bad observations, want 1..5", quarantinedAfter)
	}
	if tr.Score("qpu0") <= 0 {
		t.Fatal("quarantined backend reports a zero drift score")
	}
}

// The reference window freezes once the backend leaves Healthy: a long run
// of drifted samples must not become the new normal. After canary
// re-admission a single bad sample scores against the original healthy
// regime, not the drifted one.
func TestReferenceFrozenWhileUnhealthy(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr := testTracker(clk)
	feed(tr, "qpu0", good, 8)
	feed(tr, "qpu0", bad, 50) // drives to Quarantined, then tries to poison the reference
	if got := tr.State("qpu0"); got != metrics.HealthQuarantined {
		t.Fatalf("state %v after sustained drift, want Quarantined", got)
	}

	// Re-admit via canaries, then check the detector still scores the
	// drifted regime as drift.
	for i := 0; i < DefaultCanaryPasses; i++ {
		clk.advance(time.Second)
		if !tr.CanaryDue("qpu0") {
			t.Fatalf("canary %d not due", i)
		}
		tr.RecordCanary("qpu0", true)
	}
	if got := tr.State("qpu0"); got != metrics.HealthHealthy {
		t.Fatalf("state %v after canary streak, want Healthy", got)
	}
	// One bad sample lands in the reference before the state flips (scoring
	// precedes the push), so the band is slightly widened — but 49 further
	// bad samples were frozen out, and a fully-poisoned reference would
	// score this sample near zero.
	tr.ObserveQuality("qpu0", "QPSK/4", bad)
	if tr.Score("qpu0") < 0.5 {
		t.Fatalf("score %.3f after one bad sample post-re-admission — the reference learned the drifted regime", tr.Score("qpu0"))
	}
}

// Hysteresis: a Degraded backend recovers to Healthy only after sustained
// in-control behavior decays the score below PHRecover — never from one
// lucky solve.
func TestRecoveryHysteresis(t *testing.T) {
	tr := NewTracker(Config{WindowSize: 8, MinWindow: 4, PHQuarantine: 1000})
	feed(tr, "qpu0", good, 8)
	tr.ObserveQuality("qpu0", "QPSK/4", bad)
	if got := tr.State("qpu0"); got != metrics.HealthDegraded {
		t.Fatalf("state %v after drift burst, want Degraded", got)
	}
	tr.ObserveQuality("qpu0", "QPSK/4", good)
	if got := tr.State("qpu0"); got != metrics.HealthDegraded {
		t.Fatalf("one good solve recovered the backend (state %v)", got)
	}
	recovered := false
	for i := 0; i < 200; i++ {
		tr.ObserveQuality("qpu0", "QPSK/4", good)
		if tr.State("qpu0") == metrics.HealthHealthy {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("backend never recovered under sustained good behavior")
	}
	if tr.Score("qpu0") > DefaultPHRecover {
		t.Fatalf("recovered with score %.3f above the recover threshold", tr.Score("qpu0"))
	}
}

// A crash-looping backend quarantines within a couple of failures even when
// it never returns a quality sample.
func TestFailureQuarantine(t *testing.T) {
	tr := testTracker(nil)
	tr.ObserveOutcome("qpu0", true)
	if got := tr.State("qpu0"); got != metrics.HealthDegraded {
		t.Fatalf("state %v after one failure, want Degraded", got)
	}
	tr.ObserveOutcome("qpu0", true)
	if got := tr.State("qpu0"); got != metrics.HealthQuarantined {
		t.Fatalf("state %v after two failures, want Quarantined", got)
	}
	// The failure EWMA moved too.
	sn := tr.Snapshot()
	if len(sn) != 1 || sn[0].FailureEWMA <= 0 {
		t.Fatalf("failure EWMA not tracked: %+v", sn)
	}
}

// Canary probing: only quarantined backends are probed, probes are
// rate-limited and claimed atomically, a failed probe resets the streak, and
// CanaryPasses consecutive passes re-admit with a reset detector.
func TestCanaryReadmission(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr := testTracker(clk)
	if tr.CanaryDue("qpu0") {
		t.Fatal("unknown backend due for canary")
	}
	tr.ObserveOutcome("qpu0", true)
	tr.ObserveOutcome("qpu0", true) // Quarantined
	if tr.RecordCanary("qpu1", true) {
		t.Fatal("canary recorded against an unknown backend")
	}

	if !tr.CanaryDue("qpu0") {
		t.Fatal("quarantined backend not due for canary")
	}
	if tr.CanaryDue("qpu0") {
		t.Fatal("probe slot double-claimed within the interval")
	}
	clk.advance(DefaultCanaryInterval)

	// pass, pass, fail: the streak resets.
	tr.RecordCanary("qpu0", true)
	tr.RecordCanary("qpu0", true)
	tr.RecordCanary("qpu0", false)
	if got := tr.State("qpu0"); got != metrics.HealthQuarantined {
		t.Fatalf("state %v after broken streak, want Quarantined", got)
	}
	for i := 0; i < DefaultCanaryPasses-1; i++ {
		if tr.RecordCanary("qpu0", true) {
			t.Fatalf("re-admitted after %d passes", i+1)
		}
	}
	if !tr.RecordCanary("qpu0", true) {
		t.Fatal("full pass streak did not re-admit")
	}
	if got := tr.State("qpu0"); got != metrics.HealthHealthy {
		t.Fatalf("state %v after re-admission, want Healthy", got)
	}
	if tr.Score("qpu0") != 0 {
		t.Fatalf("drift score %.3f after re-admission, want 0", tr.Score("qpu0"))
	}
	sn := tr.Snapshot()
	if sn[0].CanaryPass != 5 || sn[0].CanaryFail != 1 {
		t.Fatalf("canary tally %d/%d, want 5 passes and 1 fail", sn[0].CanaryPass, sn[0].CanaryFail)
	}
}

func TestAnyServing(t *testing.T) {
	tr := testTracker(nil)
	tr.ObserveOutcome("sick", true)
	tr.ObserveOutcome("sick", true)
	if tr.State("sick") != metrics.HealthQuarantined {
		t.Fatal("setup: sick not quarantined")
	}
	if !tr.AnyServing([]string{"sick", "ok"}) {
		t.Fatal("pool with an unknown (healthy) member reported all-quarantined")
	}
	if tr.AnyServing([]string{"sick"}) {
		t.Fatal("all-quarantined pool reported serving")
	}
	if !tr.AnyServing(nil) {
		t.Fatal("empty pool reported not serving")
	}
}

func TestSnapshotSortedAndPopulated(t *testing.T) {
	tr := testTracker(nil)
	for _, name := range []string{"s1/qpu0", "s0/qpu0", "s0/sa"} {
		feed(tr, name, good, 3)
	}
	sn := tr.Snapshot()
	if len(sn) != 3 {
		t.Fatalf("snapshot holds %d backends, want 3", len(sn))
	}
	for i := 1; i < len(sn); i++ {
		if sn[i-1].Name >= sn[i].Name {
			t.Fatalf("snapshot not name-sorted: %q before %q", sn[i-1].Name, sn[i].Name)
		}
	}
	be := sn[0]
	if be.Observations != 3 || be.ChainBreakEWMA <= 0 || be.EnergyEWMA <= 0 || be.ReadsPerSolve <= 0 {
		t.Fatalf("snapshot baselines not populated: %+v", be)
	}
}

// Every Tracker method is a safe no-op on a nil receiver, so the scheduler
// can run without a health plane and never branch.
func TestNilTrackerSafe(t *testing.T) {
	var tr *Tracker
	tr.ObserveQuality("x", "c", good)
	tr.ObserveOutcome("x", true)
	if tr.State("x") != metrics.HealthHealthy || tr.Score("x") != 0 {
		t.Fatal("nil tracker not Healthy/zero")
	}
	if tr.CanaryDue("x") || tr.RecordCanary("x", true) {
		t.Fatal("nil tracker probes canaries")
	}
	if !tr.AnyServing([]string{"x"}) {
		t.Fatal("nil tracker gates the pool")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil tracker snapshot not nil")
	}
}

// Burn alerting follows the multi-window rule: a fast spike over a calm slow
// window stays quiet, a sustained burn trips both windows and alerts, and
// the alert clears as soon as the fast window recovers even while the slow
// window is still elevated.
func TestBurnMultiWindowRule(t *testing.T) {
	cfg := SLOConfig{MissBudget: 0.05, FastAlpha: 0.5, SlowAlpha: 0.01, MinSamples: 1}
	bt := NewBurnTracker(1, cfg)
	for i := 0; i < 50; i++ {
		bt.Observe(0, false, false)
	}
	if bt.Alerting(0) {
		t.Fatal("calm shard alerting")
	}
	// Two misses spike the fast window past 2× budget; the slow window is
	// still calm, so the multi-window rule holds fire.
	bt.Observe(0, true, false)
	bt.Observe(0, true, false)
	sn := bt.Snapshot()[0]
	if sn.FastMissRate < 2*cfg.MissBudget {
		t.Fatalf("fast window %.3f did not spike", sn.FastMissRate)
	}
	if bt.Alerting(0) {
		t.Fatal("fast spike over a calm slow window alerted")
	}
	// A sustained burn elevates the slow window too — now it alerts.
	for i := 0; i < 30 && !bt.Alerting(0); i++ {
		bt.Observe(0, true, false)
	}
	if !bt.Alerting(0) {
		t.Fatal("sustained burn never alerted")
	}
	// Recovery: the fast window falls below threshold within a few clean
	// requests and the alert clears, even though the slow window decays far
	// more slowly (no stale-incident alerting).
	for i := 0; i < 8; i++ {
		bt.Observe(0, false, false)
	}
	sn = bt.Snapshot()[0]
	if bt.Alerting(0) {
		t.Fatalf("alert stuck after recovery (fast=%.3f slow=%.3f)", sn.FastMissRate, sn.SlowMissRate)
	}
	if sn.SlowMissRate <= sn.FastMissRate {
		t.Fatalf("slow window %.4f decayed faster than fast %.4f", sn.SlowMissRate, sn.FastMissRate)
	}
}

// The BER budget is its own SLO: BER-risk events alone trip the alert with
// the deadline-miss budget untouched.
func TestBurnBERBudget(t *testing.T) {
	bt := NewBurnTracker(2, SLOConfig{BERBudget: 0.05, FastAlpha: 0.5, SlowAlpha: 0.2, MinSamples: 1})
	for i := 0; i < 40 && !bt.Alerting(1); i++ {
		bt.Observe(1, false, true)
	}
	if !bt.Alerting(1) {
		t.Fatal("BER burn never alerted")
	}
	if bt.Alerting(0) {
		t.Fatal("untouched shard alerting")
	}
	sn := bt.Snapshot()
	if len(sn) != 2 || sn[1].FastMissRate != 0 || sn[1].FastBERRate == 0 || !sn[1].Alerting {
		t.Fatalf("snapshot: %+v", sn)
	}
}

// MinSamples suppresses alerting on a cold shard even when every early
// request burns (the EWMA seeds at 1.0 on the first miss).
func TestBurnMinSamplesColdStart(t *testing.T) {
	bt := NewBurnTracker(1, SLOConfig{MinSamples: 16})
	for i := 0; i < 15; i++ {
		bt.Observe(0, true, true)
		if bt.Alerting(0) {
			t.Fatalf("cold shard alerted after %d samples (MinSamples 16)", i+1)
		}
	}
	bt.Observe(0, true, true)
	if !bt.Alerting(0) {
		t.Fatal("warm burning shard not alerting")
	}
}

func TestBurnNilAndBounds(t *testing.T) {
	var bt *BurnTracker
	bt.Observe(0, true, true)
	if bt.Alerting(0) || bt.Shards() != 0 || bt.Snapshot() != nil {
		t.Fatal("nil burn tracker not a no-op")
	}
	miss, ber := bt.Budgets()
	if miss != DefaultMissBudget || ber != DefaultBERBudget {
		t.Fatal("nil burn tracker budgets not defaults")
	}
	real := NewBurnTracker(2, SLOConfig{})
	real.Observe(-1, true, true)
	real.Observe(2, true, true)
	if real.Alerting(-1) || real.Alerting(2) {
		t.Fatal("out-of-range shard alerting")
	}
	if real.Snapshot()[0].Samples != 0 {
		t.Fatal("out-of-range observation landed on shard 0")
	}
}

// The canary instance is deterministic per seed, its ground energy is an
// exact brute-force anchor, and Check accepts exactly the results that reach
// it (within tolerance).
func TestCanaryDeterministicAndCheck(t *testing.T) {
	c1, err := NewCanary(7)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCanary(7)
	if err != nil {
		t.Fatal(err)
	}
	if c1.GroundEnergy != c2.GroundEnergy {
		t.Fatalf("same seed, different ground energies: %g vs %g", c1.GroundEnergy, c2.GroundEnergy)
	}
	// Noise-free instances reduce with the offset folded in, so the ground
	// energy sits at ~0 (float error below zero) — the anchor the absolute
	// slack floor in Check exists for.
	if c1.GroundEnergy > 0 || math.IsInf(c1.GroundEnergy, 0) || math.IsNaN(c1.GroundEnergy) {
		t.Fatalf("implausible ground energy %g", c1.GroundEnergy)
	}
	if c1.Problem.Users() != CanaryUsers {
		t.Fatalf("canary spans %d users, want %d", c1.Problem.Users(), CanaryUsers)
	}

	if !c1.Check(&backend.Result{Energy: c1.GroundEnergy}, nil) {
		t.Fatal("exact ground state rejected")
	}
	if !c1.Check(&backend.Result{Energy: c1.GroundEnergy + 0.01*math.Abs(c1.GroundEnergy)}, nil) {
		t.Fatal("in-tolerance result rejected")
	}
	// An excited state sits at least a spectral gap (O(1) for this
	// instance) above the ground anchor — well past the slack floor.
	if c1.Check(&backend.Result{Energy: c1.GroundEnergy + 0.1}, nil) {
		t.Fatal("excited-state result accepted")
	}
	if c1.Check(&backend.Result{Energy: c1.GroundEnergy}, backend.ErrInjectedFault) {
		t.Fatal("errored probe accepted")
	}
	if c1.Check(nil, nil) {
		t.Fatal("nil result accepted")
	}

	// A classical solver actually reaches the anchor — the probe question is
	// answerable, so a pass/fail verdict reflects the device, not the probe.
	sa := backend.NewClassicalSA("sa", 256, 20)
	res, err := sa.Solve(context.Background(), c1.Problem, rng.New(1))
	if !c1.Check(res, err) {
		t.Fatalf("classical SA failed the canary: %v / %+v", err, res)
	}
}
