package health

import (
	"math"

	"quamax/internal/backend"
	"quamax/internal/channel"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/reduction"
	"quamax/internal/rng"
)

// CanaryUsers is the canary instance size: small enough that the reduced
// Ising problem (CanaryUsers spins under BPSK) sits well inside
// qubo.MaxBruteForceN, so the ground truth is an exact brute-force anchor,
// and large enough that a drifted annealer actually fails it.
const CanaryUsers = 8

// DefaultCanaryTolerance is the relative energy slack a probe result may
// sit above the brute-forced ground state and still pass.
const DefaultCanaryTolerance = 0.02

// Canary is one fixed known-ground-state decode instance a quarantined
// backend must solve to earn re-admission. The instance is a noise-free
// BPSK channel use (the §5.3 annealer-noise-only methodology): the received
// vector is exactly H·v̄, so the reduced Ising problem's brute-forced ground
// energy is the unique correctness anchor and any miss is the device's own
// doing, never the channel's.
type Canary struct {
	// Problem is the probe decode (read-only; hand it to Backend.Solve).
	Problem *backend.Problem
	// GroundEnergy is the exact brute-forced ground-state energy of the
	// reduced Ising problem.
	GroundEnergy float64
	// Tolerance is the relative slack above GroundEnergy that still passes
	// (DefaultCanaryTolerance when built by NewCanary).
	Tolerance float64
}

// NewCanary builds the deterministic canary instance for a seed. Equal seeds
// give byte-identical instances, so every worker probing a backend asks the
// same question.
func NewCanary(seed int64) (*Canary, error) {
	src := rng.New(seed)
	inst, err := mimo.Generate(src, mimo.Config{
		Mod:     modulation.BPSK,
		Nt:      CanaryUsers,
		Nr:      CanaryUsers,
		Channel: channel.Rayleigh{},
		SNRdB:   math.Inf(1),
	})
	if err != nil {
		return nil, err
	}
	_, ground := qubo.BruteForceIsing(reduction.ReduceToIsing(inst.Mod, inst.H, inst.Y))
	return &Canary{
		Problem:      &backend.Problem{Mod: inst.Mod, H: inst.H, Y: inst.Y},
		GroundEnergy: ground,
		Tolerance:    DefaultCanaryTolerance,
	}, nil
}

// Check judges one probe outcome: the solve must succeed and land within
// Tolerance·|ground| (at least a small absolute slack) of the brute-forced
// ground energy.
func (c *Canary) Check(res *backend.Result, err error) bool {
	if err != nil || res == nil {
		return false
	}
	slack := math.Max(c.Tolerance*math.Abs(c.GroundEnergy), 1e-9)
	return res.Energy <= c.GroundEnergy+slack
}
