// Package health is the solver-health plane: it watches the per-solve
// anneal-quality stream the serving stack already produces (telemetry
// QualityObservation samples — chain-break rate, best-energy magnitude,
// read budgets — plus solve failures) and turns it into actionable verdicts.
//
// QuAMax's decode quality hinges on device physics that drift in production:
// ICE noise, chain-break rates and TTS all wander with temperature and
// calibration age (paper §5/§7; the hybrid-structures follow-up,
// arXiv:2010.00682, argues the classical side must watch and compensate for
// exactly this). The plane has three parts:
//
//   - Tracker: per-backend × per-class rolling quality baselines (EWMA plus a
//     windowed reference captured while the backend is healthy) feeding a
//     Page–Hinkley-style cumulative-deviation drift detector with hysteresis.
//     Each backend is scored Healthy / Degraded / Quarantined.
//   - Canary: fixed known-ground-state decode instances (brute-force Ising
//     anchors, ≤ qubo.MaxBruteForceN spins) that a quarantined backend must
//     solve correctly — repeatedly — to earn re-admission.
//   - BurnTracker: per-shard SLO burn rates (deadline-miss and BER-risk
//     budgets over a fast and a slow window) with multi-window alerting,
//     which the router folds into its shed decision.
//
// The scheduler (internal/sched) feeds the Tracker with backend attribution,
// skips Quarantined pool members, and runs the canary probes; snapshots ride
// the protocol-v9 stats frame and the Prometheus exporter as
// metrics.HealthStats.
package health

import (
	"math"
	"sort"
	"sync"
	"time"

	"quamax/internal/metrics"
	"quamax/internal/telemetry"
)

// Defaults for Config fields left zero.
const (
	// DefaultBaselineAlpha is the EWMA weight of the rolling baselines.
	DefaultBaselineAlpha = 0.05
	// DefaultWindowSize is the windowed-reference capacity per class.
	DefaultWindowSize = 32
	// DefaultMinWindow is the reference fill level below which the detector
	// stays disengaged (baselines still learn).
	DefaultMinWindow = 8
	// DefaultPHDelta is the Page–Hinkley drift allowance per observation —
	// the score decays by this much per in-control sample, which is what
	// gives the detector its hysteresis.
	DefaultPHDelta = 0.05
	// DefaultPHDegraded is the cumulative-deviation score at which a backend
	// turns Degraded.
	DefaultPHDegraded = 1.0
	// DefaultPHQuarantine is the score at which it turns Quarantined.
	DefaultPHQuarantine = 3.0
	// DefaultPHRecover is the score below which a Degraded backend recovers
	// to Healthy (the lower edge of the hysteresis band).
	DefaultPHRecover = 0.25
	// DefaultChainWeight scales the chain-break-rate deviation's score
	// contribution.
	DefaultChainWeight = 5.0
	// DefaultEnergyWeight scales the best-energy deviation's contribution.
	DefaultEnergyWeight = 1.0
	// DefaultFailureWeight is the score a solve failure contributes
	// directly.
	DefaultFailureWeight = 2.0
	// DefaultCanaryInterval spaces canary probes per quarantined backend.
	DefaultCanaryInterval = 100 * time.Millisecond
	// DefaultCanaryPasses is the consecutive-pass streak that re-admits.
	DefaultCanaryPasses = 3
)

// Config parameterizes a Tracker. Zero fields take the package defaults.
type Config struct {
	// BaselineAlpha is the EWMA weight for the rolling baselines.
	BaselineAlpha float64
	// WindowSize caps the per-class windowed reference; MinWindow is the
	// fill level at which drift scoring engages.
	WindowSize, MinWindow int
	// PHDelta is the per-observation drift allowance; PHDegraded,
	// PHQuarantine and PHRecover are the state-machine thresholds on the
	// cumulative-deviation score (Recover < Degraded ≤ Quarantine).
	PHDelta, PHDegraded, PHQuarantine, PHRecover float64
	// ChainWeight, EnergyWeight and FailureWeight scale the three deviation
	// sources' score contributions.
	ChainWeight, EnergyWeight, FailureWeight float64
	// CanaryInterval rate-limits probes per quarantined backend;
	// CanaryPasses is the consecutive-pass streak required for re-admission.
	CanaryInterval time.Duration
	CanaryPasses   int
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.BaselineAlpha, DefaultBaselineAlpha)
	def(&c.PHDelta, DefaultPHDelta)
	def(&c.PHDegraded, DefaultPHDegraded)
	def(&c.PHQuarantine, DefaultPHQuarantine)
	def(&c.PHRecover, DefaultPHRecover)
	def(&c.ChainWeight, DefaultChainWeight)
	def(&c.EnergyWeight, DefaultEnergyWeight)
	def(&c.FailureWeight, DefaultFailureWeight)
	if c.WindowSize <= 0 {
		c.WindowSize = DefaultWindowSize
	}
	if c.MinWindow <= 0 {
		c.MinWindow = DefaultMinWindow
	}
	if c.MinWindow > c.WindowSize {
		c.MinWindow = c.WindowSize
	}
	if c.CanaryInterval <= 0 {
		c.CanaryInterval = DefaultCanaryInterval
	}
	if c.CanaryPasses <= 0 {
		c.CanaryPasses = DefaultCanaryPasses
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// window is a bounded sample ring with summary stats over its contents —
// the "known-good" reference the drift detector compares against. It is
// only fed while its backend is Healthy, so a drifting device cannot drag
// its own reference along.
type window struct {
	buf  []float64
	next int
	full bool
}

func (w *window) push(v float64, cap_ int) {
	if len(w.buf) < cap_ {
		w.buf = append(w.buf, v)
		return
	}
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	w.full = true
}

func (w *window) n() int { return len(w.buf) }

// stats returns the window mean and half-spread (max−min)/2 — the tolerance
// band in-control samples are expected to stay inside.
func (w *window) stats() (mean, spread float64) {
	if len(w.buf) == 0 {
		return 0, 0
	}
	lo, hi, sum := w.buf[0], w.buf[0], 0.0
	for _, v := range w.buf {
		sum += v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return sum / float64(len(w.buf)), (hi - lo) / 2
}

// classBaseline is one backend×class cell: EWMA baselines plus the windowed
// reference of the two drift-scored quality signals.
type classBaseline struct {
	n               uint64
	cbrEWMA         float64 // chain breaks per read
	energyEWMA      float64 // |best energy|
	cbrWin, engyWin window
}

// backendState is the tracker's per-backend record: drift detector,
// cross-class reporting baselines, canary bookkeeping.
type backendState struct {
	state metrics.HealthState
	obs   uint64

	// Page–Hinkley cumulative deviation: cum accumulates score−δ, minCum
	// tracks its running minimum, and cum−minCum is the drift score.
	cum, minCum float64

	classes map[string]*classBaseline

	// Cross-class rolling baselines (reporting; scoring is per class).
	cbrEWMA, energyEWMA, failEWMA, readsEWMA float64

	canaryPass, canaryFail uint64
	canaryStreak           int
	lastCanary             time.Time
}

// Tracker scores each backend's anneal quality against its own history and
// runs the Healthy → Degraded → Quarantined state machine. All methods are
// safe for concurrent use and safe on a nil receiver (no-ops / Healthy).
type Tracker struct {
	cfg Config

	mu       sync.Mutex
	backends map[string]*backendState
}

// NewTracker builds a Tracker with the given configuration.
func NewTracker(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), backends: make(map[string]*backendState)}
}

// get returns (creating if needed) the named backend's state. Caller holds mu.
func (t *Tracker) get(name string) *backendState {
	b, ok := t.backends[name]
	if !ok {
		b = &backendState{classes: make(map[string]*classBaseline)}
		t.backends[name] = b
	}
	return b
}

// ewma folds v into the running mean with the tracker's baseline alpha.
func (t *Tracker) ewma(mean *float64, v float64, n uint64) {
	if n <= 1 {
		*mean = v
		return
	}
	*mean += t.cfg.BaselineAlpha * (v - *mean)
}

// ObserveQuality feeds one solve's anneal-quality sample with backend
// attribution — the scheduler replays each completed solve's telemetry
// QualityObservation here. The sample updates the backend×class baselines
// and, once the class's windowed reference is filled, contributes a
// deviation score to the backend's drift detector.
func (t *Tracker) ObserveQuality(backend, class string, q telemetry.QualityObservation) {
	if t == nil {
		return
	}
	cbr := 0.0
	if q.Reads > 0 {
		cbr = float64(q.ChainBreaks) / float64(q.Reads)
	}
	absE := math.Abs(q.BestEnergy)
	if math.IsNaN(absE) || math.IsInf(absE, 0) {
		absE = 0
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.get(backend)
	b.obs++
	t.ewma(&b.cbrEWMA, cbr, b.obs)
	t.ewma(&b.energyEWMA, absE, b.obs)
	t.ewma(&b.readsEWMA, float64(q.Reads), b.obs)

	c, ok := b.classes[class]
	if !ok {
		c = &classBaseline{}
		b.classes[class] = c
	}
	c.n++
	t.ewma(&c.cbrEWMA, cbr, c.n)
	t.ewma(&c.energyEWMA, absE, c.n)

	score := 0.0
	if c.cbrWin.n() >= t.cfg.MinWindow {
		// Chain breaks: only an increase beyond the reference band is drift.
		mean, spread := c.cbrWin.stats()
		if dev := cbr - (mean + spread); dev > 0 {
			score += t.cfg.ChainWeight * dev
		}
		// Best energy: any shift of |E| beyond the band is suspect — a sick
		// annealer's best energies collapse toward 0 (less optimal), an
		// ICE-biased one can also overshoot. Normalize by the reference mean
		// and clamp so one outlier cannot quarantine on its own.
		mean, spread = c.engyWin.stats()
		if dev := math.Abs(absE-mean) - spread; dev > 0 && mean > 0 {
			score += t.cfg.EnergyWeight * math.Min(dev/mean, 4)
		}
	}
	if b.state == metrics.HealthHealthy {
		// The reference only learns from a healthy device; freezing it on
		// degradation keeps the detector anchored to the known-good regime.
		c.cbrWin.push(cbr, t.cfg.WindowSize)
		c.engyWin.push(absE, t.cfg.WindowSize)
	}
	t.score(b, score)
}

// ObserveOutcome feeds one solve's terminal outcome: failures both move the
// failure-rate baseline and contribute FailureWeight directly to the drift
// score, so a crash-looping backend quarantines within a handful of solves
// even if it never returns a quality sample.
func (t *Tracker) ObserveOutcome(backend string, failed bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.get(backend)
	b.obs++
	f := 0.0
	if failed {
		f = 1
	}
	t.ewma(&b.failEWMA, f, b.obs)
	if failed {
		t.score(b, t.cfg.FailureWeight)
	}
}

// score runs one Page–Hinkley step and the state machine. Caller holds mu.
func (t *Tracker) score(b *backendState, x float64) {
	b.cum += x - t.cfg.PHDelta
	if b.cum < b.minCum {
		b.minCum = b.cum
	}
	s := b.cum - b.minCum
	switch {
	case s >= t.cfg.PHQuarantine && b.state != metrics.HealthQuarantined:
		b.state = metrics.HealthQuarantined
		b.canaryStreak = 0
	case s >= t.cfg.PHDegraded && b.state == metrics.HealthHealthy:
		b.state = metrics.HealthDegraded
	case s <= t.cfg.PHRecover && b.state == metrics.HealthDegraded:
		// Hysteresis: the score decays by PHDelta per in-control sample, so
		// recovery needs sustained good behavior, not one lucky solve.
		b.state = metrics.HealthHealthy
	}
}

// State returns the backend's current verdict (Healthy for backends never
// observed, and on a nil tracker).
func (t *Tracker) State(backend string) metrics.HealthState {
	if t == nil {
		return metrics.HealthHealthy
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.backends[backend]; ok {
		return b.state
	}
	return metrics.HealthHealthy
}

// Score returns the backend's current drift score (0 when unknown).
func (t *Tracker) Score(backend string) float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.backends[backend]; ok {
		return b.cum - b.minCum
	}
	return 0
}

// CanaryDue reports whether a canary probe should run against the backend
// now, and — when it returns true — claims the probe slot, so concurrent
// workers never double-probe. Only quarantined backends are probed.
func (t *Tracker) CanaryDue(backend string) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.backends[backend]
	if !ok || b.state != metrics.HealthQuarantined {
		return false
	}
	now := t.cfg.Now()
	if !b.lastCanary.IsZero() && now.Sub(b.lastCanary) < t.cfg.CanaryInterval {
		return false
	}
	b.lastCanary = now
	return true
}

// RecordCanary records one canary-probe outcome against a quarantined
// backend. CanaryPasses consecutive passes re-admit it: the verdict resets
// to Healthy and the drift detector restarts from zero (the frozen
// known-good reference windows are kept — they still describe the healthy
// regime the canaries just re-confirmed). Returns true when this call
// re-admitted the backend.
func (t *Tracker) RecordCanary(backend string, pass bool) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.backends[backend]
	if !ok || b.state != metrics.HealthQuarantined {
		return false
	}
	if !pass {
		b.canaryFail++
		b.canaryStreak = 0
		return false
	}
	b.canaryPass++
	b.canaryStreak++
	if b.canaryStreak < t.cfg.CanaryPasses {
		return false
	}
	b.state = metrics.HealthHealthy
	b.cum, b.minCum = 0, 0
	b.canaryStreak = 0
	return true
}

// AnyServing reports whether at least one of names is not quarantined — the
// scheduler's last-resort guard: when the whole pool is quarantined it keeps
// serving (a degraded answer beats none).
func (t *Tracker) AnyServing(names []string) bool {
	if t == nil {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, n := range names {
		if b, ok := t.backends[n]; !ok || b.state != metrics.HealthQuarantined {
			return true
		}
	}
	return len(names) == 0
}

// Snapshot exports the per-backend health view in canonical (name-sorted)
// order. Safe on a nil tracker (returns nil).
func (t *Tracker) Snapshot() []metrics.BackendHealth {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]metrics.BackendHealth, 0, len(t.backends))
	for name, b := range t.backends {
		out = append(out, metrics.BackendHealth{
			Name:           name,
			State:          b.state,
			Score:          b.cum - b.minCum,
			Observations:   b.obs,
			ChainBreakEWMA: b.cbrEWMA,
			EnergyEWMA:     b.energyEWMA,
			FailureEWMA:    b.failEWMA,
			ReadsPerSolve:  b.readsEWMA,
			CanaryPass:     b.canaryPass,
			CanaryFail:     b.canaryFail,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
