package health

import (
	"sync"

	"quamax/internal/metrics"
)

// SLO defaults for SLOConfig fields left zero.
const (
	// DefaultMissBudget is the deadline-miss SLO budget (fraction of
	// deadline-bearing requests allowed to miss).
	DefaultMissBudget = 0.01
	// DefaultBERBudget is the BER-risk budget: the allowed fraction of
	// requests with a BER-risk event (soft-decode LLR saturation, or a QoS
	// target the planner had to deny to classical).
	DefaultBERBudget = 0.05
	// DefaultFastAlpha and DefaultSlowAlpha are the EWMA weights of the fast
	// (~20-request) and slow (~200-request) burn windows.
	DefaultFastAlpha = 0.05
	DefaultSlowAlpha = 0.005
	// DefaultBurnThreshold is the burn-rate multiple (rate/budget) both
	// windows must exceed before the shard alerts.
	DefaultBurnThreshold = 2.0
	// DefaultBurnMinSamples suppresses alerting until a shard has seen this
	// many requests.
	DefaultBurnMinSamples = 32
)

// SLOConfig parameterizes a BurnTracker. Zero fields take the defaults.
type SLOConfig struct {
	// MissBudget and BERBudget are the per-shard SLO budgets the burn rates
	// are normalized against.
	MissBudget, BERBudget float64
	// FastAlpha and SlowAlpha are the two windows' EWMA weights
	// (fast > slow).
	FastAlpha, SlowAlpha float64
	// BurnThreshold is the rate/budget multiple at which a window burns;
	// a shard alerts only when the fast AND slow windows both burn — the
	// multi-window rule that ignores short blips (fast spikes, slow calm)
	// and stale incidents (slow elevated, fast recovered).
	BurnThreshold float64
	// MinSamples suppresses alerting on a cold shard.
	MinSamples int
}

// withDefaults resolves zero fields.
func (c SLOConfig) withDefaults() SLOConfig {
	if c.MissBudget <= 0 {
		c.MissBudget = DefaultMissBudget
	}
	if c.BERBudget <= 0 {
		c.BERBudget = DefaultBERBudget
	}
	if c.FastAlpha <= 0 {
		c.FastAlpha = DefaultFastAlpha
	}
	if c.SlowAlpha <= 0 {
		c.SlowAlpha = DefaultSlowAlpha
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = DefaultBurnThreshold
	}
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultBurnMinSamples
	}
	return c
}

// shardBurn is one shard's pair of burn windows.
type shardBurn struct {
	mu                 sync.Mutex
	samples            uint64
	fastMiss, slowMiss float64
	fastBER, slowBER   float64
}

// BurnTracker tracks per-shard SLO burn rates: every request lands a
// deadline-miss bit and a BER-risk bit in a fast and a slow EWMA window.
// The scheduler feeds it at the same point it finishes the request's trace;
// the router consults Alerting in its shed decision. All methods are safe
// for concurrent use and safe on a nil receiver.
type BurnTracker struct {
	cfg    SLOConfig
	shards []*shardBurn
}

// NewBurnTracker builds a tracker over n shards (n ≥ 1).
func NewBurnTracker(n int, cfg SLOConfig) *BurnTracker {
	if n < 1 {
		n = 1
	}
	t := &BurnTracker{cfg: cfg.withDefaults(), shards: make([]*shardBurn, n)}
	for i := range t.shards {
		t.shards[i] = &shardBurn{}
	}
	return t
}

// Observe records one completed request on a shard: whether it missed its
// deadline and whether it carried a BER-risk event.
func (t *BurnTracker) Observe(shard int, deadlineMiss, berMiss bool) {
	if t == nil || shard < 0 || shard >= len(t.shards) {
		return
	}
	miss, ber := 0.0, 0.0
	if deadlineMiss {
		miss = 1
	}
	if berMiss {
		ber = 1
	}
	s := t.shards[shard]
	s.mu.Lock()
	s.samples++
	if s.samples == 1 {
		s.fastMiss, s.slowMiss = miss, miss
		s.fastBER, s.slowBER = ber, ber
	} else {
		s.fastMiss += t.cfg.FastAlpha * (miss - s.fastMiss)
		s.slowMiss += t.cfg.SlowAlpha * (miss - s.slowMiss)
		s.fastBER += t.cfg.FastAlpha * (ber - s.fastBER)
		s.slowBER += t.cfg.SlowAlpha * (ber - s.slowBER)
	}
	s.mu.Unlock()
}

// alertingLocked evaluates the multi-window rule. Caller holds s.mu.
func (t *BurnTracker) alertingLocked(s *shardBurn) bool {
	if s.samples < uint64(t.cfg.MinSamples) {
		return false
	}
	th := t.cfg.BurnThreshold
	missBurn := s.fastMiss >= th*t.cfg.MissBudget && s.slowMiss >= th*t.cfg.MissBudget
	berBurn := s.fastBER >= th*t.cfg.BERBudget && s.slowBER >= th*t.cfg.BERBudget
	return missBurn || berBurn
}

// Alerting reports the shard's multi-window verdict: some budget (miss or
// BER) is burning faster than BurnThreshold× on both windows.
func (t *BurnTracker) Alerting(shard int) bool {
	if t == nil || shard < 0 || shard >= len(t.shards) {
		return false
	}
	s := t.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	return t.alertingLocked(s)
}

// Shards returns the tracked shard count (0 on a nil tracker).
func (t *BurnTracker) Shards() int {
	if t == nil {
		return 0
	}
	return len(t.shards)
}

// Budgets returns the configured miss and BER budgets (the Prometheus
// exporter normalizes burn gauges against them).
func (t *BurnTracker) Budgets() (miss, ber float64) {
	if t == nil {
		return DefaultMissBudget, DefaultBERBudget
	}
	return t.cfg.MissBudget, t.cfg.BERBudget
}

// Snapshot exports every shard's burn view (Sheds and MissEWMA are the
// router's fields and stay zero here — the serving binary overlays them).
// Safe on a nil tracker (returns nil).
func (t *BurnTracker) Snapshot() []metrics.ShardBurn {
	if t == nil {
		return nil
	}
	out := make([]metrics.ShardBurn, len(t.shards))
	for i, s := range t.shards {
		s.mu.Lock()
		out[i] = metrics.ShardBurn{
			FastMissRate: s.fastMiss,
			SlowMissRate: s.slowMiss,
			FastBERRate:  s.fastBER,
			SlowBERRate:  s.slowBER,
			Samples:      s.samples,
			Alerting:     t.alertingLocked(s),
		}
		s.mu.Unlock()
	}
	return out
}
