package qaoa

import (
	"math"
	"testing"

	"quamax/internal/channel"
	"quamax/internal/linalg"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/reduction"
	"quamax/internal/rng"
)

func singleSpinProblem() *qubo.Ising {
	p := qubo.NewIsing(1)
	p.H[0] = 1 // ground state: spin −1 (bit 0)
	return p
}

func TestNewCircuitValidation(t *testing.T) {
	if _, err := NewCircuit(qubo.NewIsing(0)); err == nil {
		t.Fatal("empty problem accepted")
	}
	if _, err := NewCircuit(qubo.NewIsing(MaxQubits + 1)); err == nil {
		t.Fatal("oversized problem accepted")
	}
}

func TestStateVectorIsNormalized(t *testing.T) {
	src := rng.New(161)
	p := qubo.NewIsing(5)
	for i := 0; i < 5; i++ {
		p.H[i] = src.Gauss(0, 1)
		for j := i + 1; j < 5; j++ {
			p.SetJ(i, j, src.Gauss(0, 1))
		}
	}
	c, err := NewCircuit(p)
	if err != nil {
		t.Fatal(err)
	}
	state, err := c.Run(Params{Gammas: []float64{0.7, 0.3}, Betas: []float64{0.4, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	var norm float64
	for _, a := range state {
		norm += real(a)*real(a) + imag(a)*imag(a)
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("state norm %g, want 1 (unitarity)", norm)
	}
}

func TestZeroAnglesGiveUniformDistribution(t *testing.T) {
	p := singleSpinProblem()
	c, _ := NewCircuit(p)
	e, err := c.ExpectedEnergy(Params{Gammas: []float64{0}, Betas: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform superposition: ⟨C⟩ = average of {+1, −1} energies = 0.
	if math.Abs(e) > 1e-9 {
		t.Fatalf("uniform expected energy %g, want 0", e)
	}
	gp, _ := c.GroundProbability(Params{Gammas: []float64{0}, Betas: []float64{0}})
	if math.Abs(gp-0.5) > 1e-9 {
		t.Fatalf("uniform ground probability %g, want 0.5", gp)
	}
}

// One optimized QAOA layer must beat random guessing on a single spin.
func TestOptimizedLayerBeatsUniform(t *testing.T) {
	c, _ := NewCircuit(singleSpinProblem())
	params, err := c.OptimizeGrid(16)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := c.GroundProbability(params)
	if err != nil {
		t.Fatal(err)
	}
	if gp <= 0.6 {
		t.Fatalf("optimized p=1 ground probability %g, want > 0.6", gp)
	}
}

// The §8 scenario: QAOA decodes a 4×4 BPSK ML problem. Ground-state
// amplification must be significant, and sampled solutions must decode the
// transmitted bits with high probability.
func TestQAOADecodes4x4BPSK(t *testing.T) {
	src := rng.New(162)
	h := channel.RandomPhase{}.Generate(src, 4, 4)
	bits := src.Bits(4)
	v := modulation.BPSK.MapGrayVector(bits)
	y := linalg.MulVec(h, v)

	logical := reduction.ReduceToIsing(modulation.BPSK, h, y)
	c, err := NewCircuit(logical)
	if err != nil {
		t.Fatal(err)
	}
	params, err := c.OptimizeGrid(24)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := c.GroundProbability(params)
	if err != nil {
		t.Fatal(err)
	}
	uniform := 1.0 / 16
	if gp < 3*uniform {
		t.Fatalf("p=1 QAOA ground probability %.3f did not amplify over uniform %.3f", gp, uniform)
	}
	// Best-of-shots decoding.
	shots, err := c.Sample(params, 64, src)
	if err != nil {
		t.Fatal(err)
	}
	bestE := math.Inf(1)
	var best []byte
	for _, s := range shots {
		if e := logical.Energy(qubo.SpinsFromBits(s)); e < bestE {
			bestE = e
			best = s
		}
	}
	rx := modulation.BPSK.PostTranslate(best)
	for i := range bits {
		if rx[i] != bits[i] {
			t.Fatalf("QAOA best-of-64 decode wrong at bit %d (energy %g)", i, bestE)
		}
	}
}

// The exponential wall the paper cites: state-vector cost grows 2^N, so a
// 48-user BPSK problem is out of reach by construction.
func TestQAOARejectsLargeMIMO(t *testing.T) {
	if _, err := NewCircuit(qubo.NewIsing(48)); err == nil {
		t.Fatal("48-variable circuit should exceed the simulation cap")
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	c, _ := NewCircuit(singleSpinProblem())
	params, _ := c.OptimizeGrid(16)
	gp, _ := c.GroundProbability(params)
	shots, err := c.Sample(params, 4000, rng.New(163))
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, s := range shots {
		if s[0] == 0 { // bit 0 = spin −1 = ground
			zeros++
		}
	}
	got := float64(zeros) / float64(len(shots))
	if math.Abs(got-gp) > 0.04 {
		t.Fatalf("sampled ground rate %.3f vs exact %.3f", got, gp)
	}
}

func TestParamsValidation(t *testing.T) {
	c, _ := NewCircuit(singleSpinProblem())
	if _, err := c.Run(Params{}); err == nil {
		t.Fatal("empty schedule accepted")
	}
	if _, err := c.Run(Params{Gammas: []float64{1}, Betas: []float64{1, 2}}); err == nil {
		t.Fatal("mismatched schedule accepted")
	}
	if _, err := c.OptimizeGrid(1); err == nil {
		t.Fatal("degenerate grid accepted")
	}
}
