// Package qaoa implements a gate-model Quantum Approximate Optimization
// Algorithm simulator for the Ising problems QuAMax produces (paper §6:
// "they both may leverage our formulation §3.2 … opens the door to
// application of our techniques on future hardware capable of running
// QAOA"; §8: gate-model QPUs "currently cannot support algorithms that
// decode more than 4×4 BPSK").
//
// The simulator is an exact state-vector evolution: p alternating layers of
// the diagonal cost unitary e^{−iγ·C} (C is the Ising objective evaluated on
// computational basis states) and the transverse mixer e^{−iβ·Σ X_i},
// starting from the uniform superposition. It is exponential in the number
// of logical variables, which is exactly why the paper's 4×4-BPSK remark
// holds — and tests here demonstrate it.
package qaoa

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"quamax/internal/qubo"
	"quamax/internal/rng"
)

// MaxQubits caps the exact simulation (2^20 amplitudes ≈ 16 MiB).
const MaxQubits = 20

// Circuit is a QAOA instance: an Ising cost function plus a layer schedule.
type Circuit struct {
	problem *qubo.Ising
	n       int
	// energies caches C(z) for every basis state z.
	energies []float64
}

// NewCircuit prepares a QAOA circuit for the Ising problem.
func NewCircuit(p *qubo.Ising) (*Circuit, error) {
	if p.N < 1 {
		return nil, errors.New("qaoa: empty problem")
	}
	if p.N > MaxQubits {
		return nil, fmt.Errorf("qaoa: %d qubits exceed the exact-simulation cap %d", p.N, MaxQubits)
	}
	c := &Circuit{problem: p, n: p.N, energies: make([]float64, 1<<p.N)}
	spins := make([]int8, p.N)
	for z := range c.energies {
		for i := 0; i < p.N; i++ {
			if z>>i&1 == 1 {
				spins[i] = 1
			} else {
				spins[i] = -1
			}
		}
		c.energies[z] = p.Energy(spins)
	}
	return c, nil
}

// Params are the per-layer angles.
type Params struct {
	Gammas []float64 // cost-layer angles, length p
	Betas  []float64 // mixer-layer angles, length p
}

// Layers returns p.
func (p Params) Layers() int { return len(p.Gammas) }

// Validate checks the schedule.
func (p Params) Validate() error {
	if len(p.Gammas) == 0 || len(p.Gammas) != len(p.Betas) {
		return errors.New("qaoa: gammas and betas must be non-empty and equal length")
	}
	return nil
}

// Run evolves the state vector and returns the final amplitudes.
func (c *Circuit) Run(params Params) ([]complex128, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	dim := 1 << c.n
	state := make([]complex128, dim)
	amp := complex(1/math.Sqrt(float64(dim)), 0)
	for z := range state {
		state[z] = amp
	}
	for layer := 0; layer < params.Layers(); layer++ {
		gamma, beta := params.Gammas[layer], params.Betas[layer]
		// Cost unitary: diagonal phases.
		for z := range state {
			state[z] *= cmplx.Exp(complex(0, -gamma*c.energies[z]))
		}
		// Mixer: RX(2β) on every qubit.
		cb, sb := complex(math.Cos(beta), 0), complex(0, -math.Sin(beta))
		for q := 0; q < c.n; q++ {
			bit := 1 << q
			for z := 0; z < dim; z++ {
				if z&bit != 0 {
					continue
				}
				a, b := state[z], state[z|bit]
				state[z] = cb*a + sb*b
				state[z|bit] = sb*a + cb*b
			}
		}
	}
	return state, nil
}

// ExpectedEnergy returns ⟨C⟩ under the final state.
func (c *Circuit) ExpectedEnergy(params Params) (float64, error) {
	state, err := c.Run(params)
	if err != nil {
		return 0, err
	}
	var e float64
	for z, a := range state {
		p := real(a)*real(a) + imag(a)*imag(a)
		e += p * c.energies[z]
	}
	return e, nil
}

// GroundProbability returns the probability of measuring a ground state.
func (c *Circuit) GroundProbability(params Params) (float64, error) {
	state, err := c.Run(params)
	if err != nil {
		return 0, err
	}
	ge := math.Inf(1)
	for _, e := range c.energies {
		if e < ge {
			ge = e
		}
	}
	var p float64
	for z, a := range state {
		if c.energies[z] <= ge+1e-9 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p, nil
}

// Sample draws shots measurement outcomes (bit strings as qubo bits, LSB =
// variable 0) from the final state.
func (c *Circuit) Sample(params Params, shots int, src *rng.Source) ([][]byte, error) {
	state, err := c.Run(params)
	if err != nil {
		return nil, err
	}
	cum := make([]float64, len(state)+1)
	for z, a := range state {
		cum[z+1] = cum[z] + real(a)*real(a) + imag(a)*imag(a)
	}
	total := cum[len(state)]
	out := make([][]byte, shots)
	for s := range out {
		u := src.Float64() * total
		lo, hi := 0, len(state)
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if cum[mid] <= u {
				lo = mid
			} else {
				hi = mid
			}
		}
		bits := make([]byte, c.n)
		for i := 0; i < c.n; i++ {
			bits[i] = byte(lo >> i & 1)
		}
		out[s] = bits
	}
	return out, nil
}

// OptimizeGrid performs the standard p=1 angle search over a grid, returning
// the best (γ, β) by expected energy. Resolution sets the grid points per
// axis. Cost energies are rescaled internally so γ ranges over a
// problem-independent window.
func (c *Circuit) OptimizeGrid(resolution int) (Params, error) {
	if resolution < 2 {
		return Params{}, errors.New("qaoa: need at least a 2x2 grid")
	}
	scale := c.problem.MaxAbsCoefficient()
	if scale == 0 {
		scale = 1
	}
	best := Params{Gammas: []float64{0}, Betas: []float64{0}}
	bestE := math.Inf(1)
	for gi := 1; gi <= resolution; gi++ {
		gamma := float64(gi) / float64(resolution) * math.Pi / scale
		for bi := 1; bi < resolution; bi++ {
			beta := float64(bi) / float64(resolution) * math.Pi / 2
			p := Params{Gammas: []float64{gamma}, Betas: []float64{beta}}
			e, err := c.ExpectedEnergy(p)
			if err != nil {
				return Params{}, err
			}
			if e < bestE {
				bestE = e
				best = p
			}
		}
	}
	return best, nil
}
