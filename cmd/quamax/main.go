// Command quamax regenerates the paper's tables and figures at full scale.
//
// Usage:
//
//	quamax -exp table1              # one experiment
//	quamax -exp fig5,fig6 -quick    # several, at bench scale
//	quamax -exp all -csv out/       # everything, also writing CSV files
//
// Experiment IDs: table1 table2 fig4 fig5 fig6 fig7 fig8
// fig9 fig10 fig11 fig12 fig13 fig14 fig15.
//
// It also fronts the serving telemetry plane (protocol v7):
//
//	quamax -top 127.0.0.1:9370             # one-shot serving stats
//	quamax -top 127.0.0.1:9370 -watch 2s   # live redrawing table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"quamax/internal/experiments"
)

// runner executes one experiment at quick or full scale.
type runner struct {
	name  string
	quick func(e *experiments.Env) (*experiments.Table, error)
	full  func(e *experiments.Env) (*experiments.Table, error)
}

func runners(tracePath string) []runner {
	return []runner{
		{"table1",
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Table1(experiments.Table1Quick())
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Table1(experiments.Table1Full())
			}},
		{"table2",
			func(e *experiments.Env) (*experiments.Table, error) { return experiments.Table2() },
			func(e *experiments.Env) (*experiments.Table, error) { return experiments.Table2() }},
		{"fig4",
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig4(e, experiments.Fig4Quick())
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig4(e, experiments.Fig4Full())
			}},
		{"fig5",
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig5(e, experiments.Fig5Quick())
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig5(e, experiments.Fig5Full())
			}},
		{"fig6",
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig6(e, experiments.Fig6Quick())
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig6(e, experiments.Fig6Full())
			}},
		{"fig7",
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig7(e, experiments.Fig7Quick())
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig7(e, experiments.Fig7Full())
			}},
		{"fig8",
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig8(e, experiments.Fig8Quick())
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig8(e, experiments.Fig8Full())
			}},
		{"fig9",
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig9(e, experiments.Fig9Quick())
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig9(e, experiments.Fig9Full())
			}},
		{"fig10",
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig10(e, experiments.Fig10Quick())
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig10(e, experiments.Fig10Full())
			}},
		{"fig11",
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig11(e, experiments.Fig11Quick())
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig11(e, experiments.Fig11Full())
			}},
		{"fig12",
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig12(e, experiments.Fig12Quick())
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig12(e, experiments.Fig12Full())
			}},
		{"fig13",
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig13(e, experiments.Fig13Quick())
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig13(e, experiments.Fig13Full())
			}},
		{"fig14",
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig14(e, experiments.Fig14Quick())
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Fig14(e, experiments.Fig14Full())
			}},
		{"fig15",
			func(e *experiments.Env) (*experiments.Table, error) {
				cfg := experiments.Fig15Quick()
				cfg.TracePath = tracePath
				return experiments.Fig15(e, cfg)
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				cfg := experiments.Fig15Full()
				cfg.TracePath = tracePath
				return experiments.Fig15(e, cfg)
			}},
		{"future",
			func(e *experiments.Env) (*experiments.Table, error) { return experiments.TableFuture() },
			func(e *experiments.Env) (*experiments.Table, error) { return experiments.TableFuture() }},
		{"reverse",
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.AblationReverse(e, experiments.ReverseQuick())
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.AblationReverse(e, experiments.ReverseFull())
			}},
		{"coded",
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Coded(e, experiments.CodedQuick())
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.Coded(e, experiments.CodedFull())
			}},
		{"sa",
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.SAComparison(e, experiments.SAQuick())
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.SAComparison(e, experiments.SAFull())
			}},
		{"qaoa",
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.QAOAExperiment(e, experiments.QAOAQuick())
			},
			func(e *experiments.Env) (*experiments.Table, error) {
				return experiments.QAOAExperiment(e, experiments.QAOAFull())
			}},
	}
}

func main() {
	var (
		exp    = flag.String("exp", "", "comma-separated experiment IDs, or 'all'")
		quick  = flag.Bool("quick", false, "run at bench scale instead of full scale")
		csvDir = flag.String("csv", "", "directory to also write <exp>.csv files into")
		trace  = flag.String("trace", "", "QMTR trace file for fig15 (default: synthesize)")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
		top    = flag.String("top", "", "poll a serving data center's live stats (fronthaul address) and exit")
		watch  = flag.Duration("watch", 0, "with -top, redraw the stats table every interval")
	)
	flag.Parse()

	if topMain(*top, *watch) {
		return
	}

	all := runners(*trace)
	if *list {
		for _, r := range all {
			fmt.Println(r.name)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: quamax -exp <id>[,<id>...] | -exp all [-quick] [-csv dir]")
		fmt.Fprintln(os.Stderr, "experiments:", names(all))
		os.Exit(2)
	}

	wanted := map[string]bool{}
	if *exp == "all" {
		for _, r := range all {
			wanted[r.name] = true
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}
	for id := range wanted {
		if !contains(all, id) {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, names(all))
			os.Exit(2)
		}
	}

	env := experiments.NewEnv()
	for _, r := range all {
		if !wanted[r.name] {
			continue
		}
		start := time.Now()
		run := r.full
		if *quick {
			run = r.quick
		}
		tab, err := run(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(tab.String())
		fmt.Printf("(%s completed in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, r.name+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
				os.Exit(1)
			}
		}
	}
}

func names(rs []runner) string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.name
	}
	return strings.Join(out, " ")
}

func contains(rs []runner, name string) bool {
	for _, r := range rs {
		if r.name == name {
			return true
		}
	}
	return false
}
