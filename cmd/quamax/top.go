package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"quamax/internal/fronthaul"
	"quamax/internal/metrics"
	"quamax/internal/telemetry"
)

// runTop polls a serving data center's stats frame and renders the live
// serving picture: pool counters (with per-backend health verdicts when the
// v9 health block rides the frame), the per-shard breakdown with shed counts
// and deadline-miss EWMAs, SLO burn rates, per-stage latency quantiles,
// deadline slack and per-class anneal quality. interval 0 means one shot;
// otherwise the table redraws every interval until interrupted.
func runTop(addr string, interval time.Duration) error {
	client, err := fronthaul.Dial(addr)
	if err != nil {
		return err
	}
	defer client.Close()
	for {
		stats, err := client.PoolStats()
		if err != nil {
			return err
		}
		if interval > 0 {
			fmt.Print("\033[H\033[2J") // home + clear between redraws
		}
		printStats(addr, stats)
		if interval <= 0 {
			return nil
		}
		time.Sleep(interval)
	}
}

// fmtMicros renders a microsecond quantity as a rounded duration.
func fmtMicros(us float64) string {
	if us <= 0 {
		return "-"
	}
	d := time.Duration(us * float64(time.Microsecond))
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	}
	return d.Round(100 * time.Nanosecond).String()
}

// fmtMicroUSD renders a micro-USD spend at the most readable scale.
func fmtMicroUSD(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("$%.2f", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fm$", v/1e3)
	}
	return fmt.Sprintf("%.1fµ$", v)
}

// fmtMilliJ renders a millijoule energy total at the most readable scale.
func fmtMilliJ(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fkJ", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fJ", v/1e3)
	}
	return fmt.Sprintf("%.1fmJ", v)
}

// fmtHealth renders one backend's drift verdict: the state, the drift score
// behind it, and — while quarantined — the canary probe tally that decides
// re-admission.
func fmtHealth(bh metrics.BackendHealth) string {
	switch bh.State {
	case metrics.HealthQuarantined:
		return fmt.Sprintf("QUARANTINED(%.2f canary %d/%d)", bh.Score, bh.CanaryPass, bh.CanaryPass+bh.CanaryFail)
	case metrics.HealthDegraded:
		return fmt.Sprintf("degraded(%.2f)", bh.Score)
	}
	return "ok"
}

// printShards writes the per-shard breakdown: the pool counters each shard
// contributed plus — when the health block rides the frame — its shed count,
// deadline-miss EWMA and SLO burn rates.
func printShards(stats *fronthaul.StatsResponse) {
	if len(stats.Shards) == 0 && (stats.Health == nil || len(stats.Health.Shards) == 0) {
		return
	}
	n := len(stats.Shards)
	var burns []metrics.ShardBurn
	if stats.Health != nil {
		burns = stats.Health.Shards
		if len(burns) > n {
			n = len(burns)
		}
	}
	for i := 0; i < n; i++ {
		line := fmt.Sprintf("  shard %d:", i)
		if i < len(stats.Shards) {
			sp := &stats.Shards[i]
			line += fmt.Sprintf(" submitted=%d completed=%d failed=%d misses=%d",
				sp.Submitted, sp.Completed, sp.Failed, sp.DeadlineMisses)
		}
		if i < len(burns) {
			b := burns[i]
			line += fmt.Sprintf(" sheds=%d miss-ewma=%.1f%% burn miss=%.2f/%.2f ber=%.2f/%.2f",
				b.Sheds, 100*b.MissEWMA, b.FastMissRate, b.SlowMissRate, b.FastBERRate, b.SlowBERRate)
			if b.Alerting {
				line += " ALERT"
			}
		}
		fmt.Println(line)
	}
}

// printStats writes one stats frame as the -top table.
func printStats(addr string, stats *fronthaul.StatsResponse) {
	p := &stats.Pool
	fmt.Printf("quamax pool @ %s — uptime %s\n", addr, fmtMicros(stats.UptimeMicros))
	fmt.Printf("  submitted %d  completed %d  failed %d  queue %d  occupancy %.0f%%\n",
		p.Submitted, p.Completed, p.Failed, p.QueueDepth, 100*p.SlotOccupancy)
	fmt.Printf("  fallback %d  planner-classical %d  deadline-misses %d  batch %d runs / %d problems  soft %d  llr-sat %d\n",
		p.FallbackDispatches, p.PlannerClassical, p.DeadlineMisses,
		p.BatchRuns, p.BatchedProblems, p.SoftSolved, p.LLRSaturations)
	if cc := p.ChannelCache; cc.Hits+cc.Misses+cc.Evictions > 0 {
		fmt.Printf("  channel cache: %d hits / %d misses / %d evictions\n", cc.Hits, cc.Misses, cc.Evictions)
	}
	// The health block's per-backend verdicts, keyed for the backend line.
	healthBy := map[string]metrics.BackendHealth{}
	if stats.Health != nil {
		for _, bh := range stats.Health.Backends {
			healthBy[bh.Name] = bh
		}
	}
	if len(p.Backends) > 0 {
		// Sort a copy by name so successive redraws keep a stable column
		// order regardless of map-iteration order server-side.
		backends := append([]metrics.BackendStats(nil), p.Backends...)
		sort.Slice(backends, func(i, j int) bool { return backends[i].Name < backends[j].Name })
		parts := make([]string, len(backends))
		for i, be := range backends {
			parts[i] = fmt.Sprintf("%s solved=%d errors=%d util=%.1f%%", be.Name, be.Solved, be.Errors, 100*be.Utilization)
			if be.SpendMicroUSD > 0 || be.EnergyMilliJ > 0 {
				parts[i] += fmt.Sprintf(" spend=%s energy=%s", fmtMicroUSD(be.SpendMicroUSD), fmtMilliJ(be.EnergyMilliJ))
			}
			if bh, ok := healthBy[be.Name]; ok {
				parts[i] += " health=" + fmtHealth(bh)
			}
		}
		fmt.Printf("  backends: %s\n", strings.Join(parts, "  |  "))
	}
	printShards(stats)

	sn := stats.Telemetry
	if sn == nil {
		fmt.Println("  (server runs without a telemetry recorder — start quamax-serve with -telemetry-addr or -trace-out)")
		return
	}
	fmt.Printf("telemetry: %d traces (%d failed), compile cache %d/%d hits\n",
		sn.Traces, sn.Failed, sn.CompileHits, sn.CompileHits+sn.CompileMisses)
	fmt.Printf("  %-8s %8s %10s %10s %10s %10s\n", "stage", "count", "p50", "p95", "p99", "max")
	for i, name := range telemetry.StageNames() {
		h := sn.Stages[i]
		if h.Count == 0 {
			continue
		}
		s := telemetry.Summarize(h)
		fmt.Printf("  %-8s %8d %10s %10s %10s %10s\n", name, s.Count,
			fmtMicros(s.P50Micros), fmtMicros(s.P95Micros), fmtMicros(s.P99Micros), fmtMicros(s.MaxMicros))
	}
	if sn.Wire.Count > 0 {
		s := telemetry.Summarize(sn.Wire)
		fmt.Printf("  %-8s %8d %10s %10s %10s %10s\n", "wire", s.Count,
			fmtMicros(s.P50Micros), fmtMicros(s.P95Micros), fmtMicros(s.P99Micros), fmtMicros(s.MaxMicros))
	}
	if total := sn.SlackMet.Count + sn.SlackMissed.Count; total > 0 {
		fmt.Printf("  deadline slack: %d met", sn.SlackMet.Count)
		if sn.SlackMet.Count > 0 {
			fmt.Printf(" (p50 %s)", fmtMicros(sn.SlackMet.Quantile(50)))
		}
		fmt.Printf(", %d missed", sn.SlackMissed.Count)
		if sn.SlackMissed.Count > 0 {
			fmt.Printf(" (p50 lateness %s)", fmtMicros(sn.SlackMissed.Quantile(50)))
		}
		fmt.Printf(" — %.1f%% miss rate\n", 100*float64(sn.SlackMissed.Count)/float64(total))
	}
	for _, class := range telemetry.SortedClasses(sn) {
		q := sn.Quality[class]
		llrSat := "-" // NaN = the class served no soft bits
		if q.LLRBits > 0 {
			llrSat = fmt.Sprintf("%.2f%%", 100*q.LLRSaturationRate())
		}
		fmt.Printf("  quality %-10s solves=%d reads=%d chain-breaks=%.2f%% llr-sat=%s best-energy p50=%.3g\n",
			class, q.Solves, q.Reads, 100*q.ChainBreakRate(), llrSat,
			q.BestEnergy.Quantile(50))
	}
}

// topMain dispatches the -top/-watch mode; returns true when it handled the
// invocation (main should exit).
func topMain(addr string, watch time.Duration) bool {
	if addr == "" {
		return false
	}
	if err := runTop(addr, watch); err != nil {
		fmt.Fprintln(os.Stderr, "quamax:", err)
		os.Exit(1)
	}
	return true
}
