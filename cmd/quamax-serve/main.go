// Command quamax-serve runs the data-center side of the C-RAN architecture:
// a QuAMax decoder pool behind the fronthaul TCP protocol (paper §1, §7).
// Access points connect with internal/fronthaul.Dial (see examples/cran).
//
//	quamax-serve -listen :9370 -anneals 200 -jf 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"quamax"
	"quamax/internal/anneal"
	"quamax/internal/fronthaul"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:9370", "TCP listen address")
		anneals  = flag.Int("anneals", 100, "anneals per decode (Na)")
		jf       = flag.Float64("jf", 4, "ferromagnetic chain strength |J_F|")
		ta       = flag.Float64("ta", 1, "anneal time Ta (µs)")
		tp       = flag.Float64("tp", 1, "pause time Tp (µs, 0 disables)")
		sp       = flag.Float64("sp", 0.35, "pause position sp")
		improved = flag.Bool("improved-range", true, "use the improved coupler dynamic range")
		amortize = flag.Bool("amortize", true, "amortize compute time over parallel embedding slots")
		seed     = flag.Int64("seed", 1, "annealer random seed")
	)
	flag.Parse()

	dec, err := quamax.NewDecoder(quamax.Options{
		JF:            *jf,
		ImprovedRange: *improved,
		Params: anneal.Params{
			AnnealTimeMicros: *ta,
			PauseTimeMicros:  *tp,
			PausePosition:    *sp,
			NumAnneals:       *anneals,
		},
		AmortizeParallel: *amortize,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := fronthaul.NewServer(dec, *seed)
	srv.Logf = log.Printf
	log.Printf("quamax-serve: QPU pool on %s (Na=%d, |J_F|=%g, Ta=%gµs, Tp=%gµs)",
		*listen, *anneals, *jf, *ta, *tp)
	if err := srv.ListenAndServe(*listen); err != nil {
		log.Fatal(err)
	}
}
