// Command quamax-serve runs the data-center side of the C-RAN architecture:
// a pool of simulated QPUs plus classical solver backends behind the
// fronthaul TCP protocol (paper §1, §7), scheduled with deadline-aware
// hybrid dispatch and a TTS-driven anneal-budget planner.
// Access points connect with internal/fronthaul.Dial (see examples/cran).
//
//	quamax-serve -listen :9370 -pool 4 -backends sa -deadline 2ms -target-ber 1e-4
//
// -pool sets the number of simulated annealer workers; -backends appends
// classical solvers ("sa", "sphere", "pt" — plain simulated annealing, the
// exact sphere decoder, or replica-exchange parallel tempering on the
// bit-parallel multi-spin engine) as extra pool workers, the first of
// which also serves as the deadline fallback; -deadline and -target-ber are
// the default per-request budget and QoS target when the AP does not send
// its own. With a "pt" backend present the planner also sizes a
// replica-exchange budget (sweeps, then ladders) into every classical
// verdict, so deadline-denied requests run the most PT effort that fits
// (-pt-rungs/-pt-ladders/-pt-sweeps set the full-effort ceiling). The
// planner (disable with -planner=false) sizes each request's
// read budget from a fitted TTS table: -tts-table names a table produced by
//
//	quamax-serve -calibrate -tts-table tts.json
//
// which measures the simulator across the serving grid, writes the fit, and
// exits; without a table the built-in coefficients apply. -channel-cache
// sizes each QPU's compiled-channel LRU: protocol-v4 APs register an
// estimated channel once per coherence window (fronthaul RegisterChannel)
// and decode its symbols by handle, so the pool compiles H once and only
// rewrites annealer biases per symbol. Protocol-v6 soft-decode requests
// (per-bit LLRs from the anneal read ensemble, for soft-decision FEC chains)
// are served by default; -soft=false rejects them cleanly and -llr-clamp
// sets the default LLR bound / int8 quantization full scale for requests
// that carry none. -telemetry-addr starts the live telemetry plane: an HTTP
// listener serving Prometheus text metrics at /metrics, the recent-trace ring
// as JSON at /traces, and the standard net/http/pprof profiling endpoints at
// /debug/pprof/; the same recorder also answers protocol-v7 stats polls
// (`quamax -top addr` / `-watch`). -trace-out writes a JSON telemetry dump
// (per-stage latency summaries plus the trace ring, ingestible by
// tools/benchjson -traces) on shutdown. On SIGINT/SIGTERM the server stops
// accepting connections, drains queued work, and prints the pool and planner
// statistics.
//
// -cost-aware turns on fleet-economics dispatch: every backend publishes a
// capability descriptor (latency model, $/solve, J/solve — internal/backend
// Capabilities), and the scheduler diverts requests whose planned anneal
// budget is classically easy (at most -cost-easy-reads) to the cheapest
// backend whose latency estimate still meets the deadline. Per-backend spend
// and energy counters ride the v7 stats frame, `quamax -top`, and the
// Prometheus export. cmd/fleetsim sweeps QPU-count × traffic-mix grids over
// the same scheduler to pick the cost-optimal fleet shape offline.
//
// -shards N splits the data center into N independent scheduler pools behind
// a channel-affinity router (internal/router): every -pool/-backends worker
// set is instantiated per shard, consistent hashing on the channel
// fingerprint keeps each registered coherence window's compiled program
// sticky to one shard, un-keyed requests balance by power-of-two-choices, and
// -shed-threshold arms tagged backpressure shedding when a shard's
// deadline-miss EWMA climbs past it. -pipeline-depth bounds the per-connection
// in-flight window of the protocol-v8 pipelined fronthaul (0 = default).
// Per-shard PoolStats ride the stats frame and the shutdown report.
//
// -health arms the solver-health plane (internal/health): every solve feeds
// per-backend × per-class anneal-quality baselines, a Page–Hinkley drift
// detector scores each backend Healthy/Degraded/Quarantined, the scheduler
// skips quarantined members and re-admits them through known-ground-state
// canary probes, and a per-shard SLO burn-rate tracker (deadline-miss and
// BER budgets, set by -slo-miss-budget/-slo-ber-budget, fast+slow window
// alerting) folds into the router's shed decision. The health view rides the
// protocol-v9 stats frame (`quamax -top`) and the Prometheus export
// (quamax_backend_health, quamax_slo_burn_rate).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"quamax"
	"quamax/internal/anneal"
	"quamax/internal/backend"
	"quamax/internal/fronthaul"
	"quamax/internal/health"
	"quamax/internal/metrics"
	"quamax/internal/qos"
	"quamax/internal/router"
	"quamax/internal/sched"
	"quamax/internal/telemetry"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:9370", "TCP listen address")
		pool      = flag.Int("pool", 1, "number of simulated QPU workers in the pool")
		backends  = flag.String("backends", "sa", "comma-separated classical backends to add (sa, sphere); first doubles as the deadline fallback; empty disables")
		deadline  = flag.Duration("deadline", 0, "default per-request deadline (0 = none)")
		batch     = flag.Bool("batch", true, "batch compatible requests into shared embedding slots")
		anneals   = flag.Int("anneals", 100, "anneals per decode (Na)")
		jf        = flag.Float64("jf", 4, "ferromagnetic chain strength |J_F|")
		ta        = flag.Float64("ta", 1, "anneal time Ta (µs)")
		tp        = flag.Float64("tp", 1, "pause time Tp (µs, 0 disables)")
		sp        = flag.Float64("sp", 0.35, "pause position sp")
		improved  = flag.Bool("improved-range", true, "use the improved coupler dynamic range")
		amortize  = flag.Bool("amortize", true, "amortize compute time over parallel embedding slots")
		chanCache = flag.Int("channel-cache", 0, "compiled-channel LRU entries per QPU (coherence windows pinned; 0 = default)")
		seed      = flag.Int64("seed", 1, "solver random seed")
		saSweeps  = flag.Int("sa-sweeps", 128, "classical SA sweeps per restart")
		saResets  = flag.Int("sa-restarts", 100, "classical SA restarts")

		ptRungs   = flag.Int("pt-rungs", 0, "parallel-tempering temperature rungs per ladder (0 = engine default)")
		ptLadders = flag.Int("pt-ladders", 0, "parallel-tempering independent ladders (0 = engine default)")
		ptSweeps  = flag.Int("pt-sweeps", 0, "parallel-tempering sweeps per rung (0 = engine default)")

		precodeBits  = flag.Int("precode-bits", 0, "default perturbation alphabet depth for downlink precode requests that carry none (0 = 1 bit/dimension)")
		precodeCache = flag.Int("precode-cache", 0, "compiled VP-program LRU entries for downlink coherence windows (0 = default)")

		soft     = flag.Bool("soft", true, "serve protocol-v6 soft-decode requests (per-bit LLRs from the anneal ensemble)")
		llrClamp = flag.Float64("llr-clamp", 0, "default LLR magnitude bound / int8 quantization full scale for soft requests that carry none (0 = package default)")

		telemetryAddr = flag.String("telemetry-addr", "", "HTTP listen address for the telemetry plane: /metrics (Prometheus), /traces (JSON ring) and /debug/pprof/ (empty = disabled)")
		traceOut      = flag.String("trace-out", "", "write a JSON telemetry dump (per-stage summaries + trace ring) here on shutdown")
		traceRing     = flag.Int("trace-ring", 0, "per-request trace ring capacity (0 = default)")

		shardsN       = flag.Int("shards", 1, "independent scheduler pools behind the channel-affinity router (the full -pool/-backends worker set per shard)")
		pipeDepth     = flag.Int("pipeline-depth", 0, "per-connection in-flight request window (0 = default)")
		shedThreshold = flag.Float64("shed-threshold", 0, "deadline-miss EWMA above which a shard sheds keyed load with a tagged error (0 = never shed)")

		costAware     = flag.Bool("cost-aware", false, "divert planner-sized easy requests to the cheapest backend by $/solve (capability descriptors) when QPU reads buy no extra QoS")
		costEasyReads = flag.Int("cost-easy-reads", 0, "largest planner anneal budget still considered classically easy for cost diversion (0 = default)")

		healthOn      = flag.Bool("health", false, "enable the solver-health plane: per-backend anneal-quality drift detection, quarantine gating with canary re-admission probes, and per-shard SLO burn-rate tracking")
		sloMissBudget = flag.Float64("slo-miss-budget", 0, "per-shard deadline-miss SLO budget the burn rates are normalized against (0 = default)")
		sloBERBudget  = flag.Float64("slo-ber-budget", 0, "per-shard BER-risk SLO budget the burn rates are normalized against (0 = default)")

		planner   = flag.Bool("planner", true, "plan per-request anneal budgets from the TTS model")
		targetBER = flag.Float64("target-ber", 0, "default per-request target BER when the AP sends none (0 = none)")
		ttsTable  = flag.String("tts-table", "", "fitted TTS table (JSON); empty = built-in coefficients")
		calibrate = flag.Bool("calibrate", false, "fit a TTS table on the local simulator, write it to -tts-table, and exit")
		calInst   = flag.Int("calibrate-instances", 8, "instances per calibration grid point")
		calReads  = flag.Int("calibrate-reads", 200, "anneals per calibration measurement run")
	)
	flag.Parse()

	if *calibrate {
		path := *ttsTable
		if path == "" {
			path = "tts.json"
		}
		log.Printf("quamax-serve: calibrating TTS table (%d instances/point, %d reads/run)",
			*calInst, *calReads)
		tab, err := qos.Calibrate(qos.CalibrationConfig{
			Instances:    *calInst,
			MeasureReads: *calReads,
			Reverse:      true,
			Seed:         *seed,
			Logf:         log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := tab.Save(path); err != nil {
			log.Fatal(err)
		}
		log.Printf("quamax-serve: wrote %d fitted points to %s", len(tab.Points), path)
		return
	}

	opts := quamax.Options{
		JF:            *jf,
		ImprovedRange: *improved,
		Params: anneal.Params{
			AnnealTimeMicros: *ta,
			PauseTimeMicros:  *tp,
			PausePosition:    *sp,
			NumAnneals:       *anneals,
		},
		AmortizeParallel: *amortize,
		ChannelCache:     *chanCache,
	}

	if *pool < 1 {
		fmt.Fprintln(os.Stderr, "quamax-serve: -pool must be at least 1")
		os.Exit(1)
	}
	// One recorder feeds all exports: the HTTP plane, the v7 stats frames and
	// the shutdown dump. Left nil (zero overhead) when no export is asked for.
	var rec *telemetry.Recorder
	if *telemetryAddr != "" || *traceOut != "" {
		rec = telemetry.New(telemetry.Config{RingSize: *traceRing})
	}
	if *shardsN < 1 {
		fmt.Fprintln(os.Stderr, "quamax-serve: -shards must be at least 1")
		os.Exit(1)
	}
	// Validate -backends (and note a PT backend for planner budgets) before
	// building any shard's worker set.
	havePT := false
	if *backends != "" {
		for _, name := range strings.Split(*backends, ",") {
			switch strings.TrimSpace(name) {
			case "sa", "sphere", "":
			case "pt":
				havePT = true
			default:
				fmt.Fprintf(os.Stderr, "quamax-serve: unknown backend %q (want sa, sphere or pt)\n", name)
				os.Exit(1)
			}
		}
	}
	// buildWorkers instantiates one shard's worker set. prefix namespaces the
	// backend names ("" for a single pool, "sN/" per shard) so per-shard
	// PoolStats merge without colliding.
	buildWorkers := func(prefix string) ([]backend.Backend, backend.Backend) {
		var workers []backend.Backend
		for i := 0; i < *pool; i++ {
			qpu, err := backend.NewAnnealer(fmt.Sprintf("%sqpu%d", prefix, i), opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if rec != nil {
				qpu.Decoder().SetTelemetry(rec)
			}
			workers = append(workers, qpu)
		}
		var fallback backend.Backend
		if *backends != "" {
			for _, name := range strings.Split(*backends, ",") {
				var be backend.Backend
				switch strings.TrimSpace(name) {
				case "sa":
					be = backend.NewClassicalSA(prefix+"sa", *saSweeps, *saResets)
				case "sphere":
					be = backend.NewSphere(prefix+"sphere", 1<<20)
				case "pt":
					be = backend.NewParallelTempering(prefix+"pt", *ptRungs, *ptLadders, *ptSweeps)
				default:
					continue
				}
				workers = append(workers, be)
				if fallback == nil {
					fallback = be
				}
			}
		}
		return workers, fallback
	}

	var budgetPlanner *qos.Planner
	if *planner {
		var table *qos.Table
		if *ttsTable != "" {
			t, err := qos.Load(*ttsTable)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			table = t
			log.Printf("quamax-serve: loaded TTS table %s (%d points)", *ttsTable, len(t.Points))
		} else {
			log.Printf("quamax-serve: using built-in TTS coefficients (run -calibrate to refit)")
		}
		p, err := qos.NewPlanner(table)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		p.Telemetry = rec
		if havePT {
			// Classical verdicts carry a deadline-sized replica-exchange
			// budget the pool's PT backend honors (backend.Problem.PT).
			p.PT = &qos.PTCost{
				MicrosPerSpinSweep: backend.DefaultPTMicrosPerSpinSweep,
				Params: anneal.PTParams{
					Rungs: *ptRungs, Ladders: *ptLadders, Sweeps: *ptSweeps,
				},
			}
		}
		budgetPlanner = p
	}

	// The solver-health plane: one drift tracker and one burn tracker span
	// the whole fleet — backend names are already namespaced per shard, and
	// the burn tracker indexes by shard internally.
	var healthTracker *health.Tracker
	var burn *health.BurnTracker
	if *healthOn {
		healthTracker = health.NewTracker(health.Config{})
		burn = health.NewBurnTracker(*shardsN, health.SLOConfig{
			MissBudget: *sloMissBudget,
			BERBudget:  *sloBERBudget,
		})
	}

	// The shard fleet: one scheduler pool per shard (the planner, with its own
	// internal lock, and the telemetry recorder are shared — traces carry the
	// shard index).
	var schedulers []*sched.Scheduler
	var shards []router.Shard
	for i := 0; i < *shardsN; i++ {
		prefix := ""
		if *shardsN > 1 {
			prefix = fmt.Sprintf("s%d/", i)
		}
		workers, fallback := buildWorkers(prefix)
		s, err := sched.New(sched.Config{
			Pool:             workers,
			Fallback:         fallback,
			DefaultDeadline:  *deadline,
			DisableBatch:     !*batch,
			Planner:          budgetPlanner,
			DefaultTargetBER: *targetBER,
			CostAware:        *costAware,
			CostEasyReads:    *costEasyReads,
			Seed:             *seed + int64(i),
			ShardID:          i,
			Telemetry:        rec,
			Health:           healthTracker,
			Burn:             burn,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		schedulers = append(schedulers, s)
		shards = append(shards, s)
	}
	var disp fronthaul.Dispatcher = schedulers[0]
	statsFn := schedulers[0].Stats
	var rt *router.Router
	if *shardsN > 1 {
		r, err := router.New(router.Config{
			Shards:        shards,
			ShedThreshold: *shedThreshold,
			Seed:          *seed,
			Burn:          burn,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rt = r
		disp = r
		statsFn = r.Stats
	}

	// healthFn assembles the stats-frame / Prometheus view of the health
	// plane: drift snapshots from the tracker, burn windows from the burn
	// tracker, with the router's shed counters and miss EWMAs overlaid on
	// the matching shard entries (the burn tracker never sees sheds — shed
	// requests are turned away before any scheduler observes them).
	var healthFn func() metrics.HealthStats
	if *healthOn {
		healthFn = func() metrics.HealthStats {
			hs := metrics.HealthStats{
				Backends: healthTracker.Snapshot(),
				Shards:   burn.Snapshot(),
			}
			if rt != nil {
				for i := range hs.Shards {
					hs.Shards[i].Sheds = rt.ShedCount(i)
					hs.Shards[i].MissEWMA = rt.MissEWMA(i)
				}
			}
			return hs
		}
	}

	srv := fronthaul.NewPoolServer(disp)
	srv.PipelineDepth = *pipeDepth
	srv.Logf = log.Printf
	srv.PrecodeBits = *precodeBits
	srv.PrecodeCache = *precodeCache
	srv.DisableSoft = !*soft
	srv.LLRClamp = *llrClamp
	srv.Telemetry = rec
	srv.Health = healthFn
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	if *telemetryAddr != "" {
		tl, err := net.Listen("tcp", *telemetryAddr)
		if err != nil {
			log.Fatal(err)
		}
		mux := telemetry.Mux(rec, func() (metrics.PoolStats, bool) { return statsFn(), true }, healthFn)
		go func() {
			if err := http.Serve(tl, mux); err != nil {
				log.Printf("quamax-serve: telemetry server: %v", err)
			}
		}()
		log.Printf("quamax-serve: telemetry on http://%s/metrics (traces at /traces, pprof at /debug/pprof/)", tl.Addr())
	}
	if rt != nil {
		log.Printf("quamax-serve: %s on %s (Na=%d, |J_F|=%g, Ta=%gµs, Tp=%gµs)",
			rt, l.Addr(), *anneals, *jf, *ta, *tp)
	} else {
		log.Printf("quamax-serve: %s on %s (Na=%d, |J_F|=%g, Ta=%gµs, Tp=%gµs)",
			schedulers[0], l.Addr(), *anneals, *jf, *ta, *tp)
	}

	// Graceful shutdown: stop accepting, drain the pool, report stats.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	select {
	case sig := <-sigs:
		log.Printf("quamax-serve: %v — draining pool", sig)
		l.Close()
	case err := <-done:
		if err != nil {
			log.Printf("quamax-serve: %v", err)
		}
	}
	drained := make(chan struct{})
	go func() {
		for _, s := range schedulers {
			s.Close()
		}
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		log.Printf("quamax-serve: drain timed out")
	}
	if rt != nil {
		for i, st := range rt.ShardStats() {
			log.Printf("quamax-serve: shard %d stats (sheds=%d)\n%s", i, rt.ShedCount(i), st)
		}
	}
	log.Printf("quamax-serve: final stats\n%s", statsFn())
	if budgetPlanner != nil {
		log.Printf("quamax-serve: planner stats\n%s", budgetPlanner.Stats())
	}
	if *traceOut != "" {
		st := statsFn()
		if err := telemetry.BuildDump(rec, &st).WriteFile(*traceOut); err != nil {
			log.Printf("quamax-serve: writing trace dump: %v", err)
		} else {
			log.Printf("quamax-serve: wrote telemetry dump (%d traces) to %s", rec.TraceCount(), *traceOut)
		}
	}
}
