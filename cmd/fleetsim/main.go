// Command fleetsim is the fleet capacity planner for the QuAMax serving
// tier: it answers "how many QPUs should this data center lease?" with
// money, not intuition. For each traffic mix it replays a synthetic
// multi-user cellular trace (internal/trace.GenerateMultiUser — Zipf cell
// popularity, per-user coherence windows) through the real scheduler
// (internal/sched) over a sweep of fleet shapes, and prices every point
// with the backends' capability descriptors (internal/backend.Capabilities:
// $/device-second lease rates, cryostat power draw). The output is one grid
// row per (mix, QPU count) — deadline-miss rate, per-solve spend, fleet
// lease for the run, energy — and one cost-optimal verdict per mix: the
// cheapest fleet whose miss rate stays inside -miss-budget.
//
//	fleetsim -qpus 1,2,4 -mixes dense-urban,suburban -requests 384
//
// Each simulated QPU runs the full decode pipeline (reduction, compiled
// channel cache, embedding, anneal simulation) and is then held busy for
// -device-occupancy of wall time, the same device-pacing model as the
// BenchmarkShardedServe row: throughput is bounded by devices × occupancy,
// which is exactly the resource the sweep is sizing. A classical SA host
// sits beside every fleet as the dedicated fallback, and -cost-aware
// (default true) lets the scheduler divert planner-sized easy requests to
// it by $/solve, so the grid shows what economics-aware dispatch is worth
// at each fleet size.
//
// Built-in traffic mixes:
//
//   - dense-urban: compact hot-cell population, 4×4 decodes at 12 dB SNR
//     with a 1e-6 BER target — planner read budgets are deep, QPU reads
//     pay, and fleet size is the QoS lever.
//   - suburban: wider, colder cells, 4×4 decodes at 28 dB SNR with a 1e-3
//     target — classically easy, cost-aware dispatch drains QPU spend.
//
// Lease cost is charged for the whole run's wall time on every pool worker
// (a leased QPU costs money while idle — that is the entire capacity
// trade), while per-solve spend and energy come from the scheduler's
// per-backend PoolStats counters, the same numbers the v7 stats frame,
// `quamax -top` and the Prometheus exporter surface in production.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"quamax"
	"quamax/internal/anneal"
	"quamax/internal/backend"
	"quamax/internal/channel"
	"quamax/internal/chimera"
	"quamax/internal/core"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/qos"
	"quamax/internal/rng"
	"quamax/internal/sched"
	"quamax/internal/trace"
)

// mix is one traffic shape the planner prices fleets against.
type mix struct {
	name      string
	snrDB     float64
	targetBER float64
	trace     trace.MultiUserConfig
}

// builtinMixes returns the named traffic mixes selectable with -mixes.
func builtinMixes(requests int) map[string]mix {
	urban := trace.MultiUserConfig{
		Cells: 16, Users: 256, Requests: requests, ZipfS: 1.1,
		Antennas: 4, CellUsers: 4, WindowUses: 8,
		RiceanK: 3, Doppler: 0.05, ShadowStdDB: 2,
	}
	suburban := urban
	suburban.Cells, suburban.Users, suburban.ZipfS = 48, 960, 0.6
	return map[string]mix{
		"dense-urban": {name: "dense-urban", snrDB: 12, targetBER: 1e-6, trace: urban},
		"suburban":    {name: "suburban", snrDB: 28, targetBER: 1e-3, trace: suburban},
	}
}

// point is one measured grid row: a fleet shape priced under one mix.
type point struct {
	qpus          int
	missRate      float64
	fallbackShare float64
	spendMicroUSD float64 // per-backend solve spend, summed
	leaseMicroUSD float64 // wall time × lease rate over every pool worker
	energyMilliJ  float64
	wall          time.Duration
}

func main() {
	var (
		qpusFlag    = flag.String("qpus", "1,2,4", "comma-separated QPU counts to sweep")
		mixesFlag   = flag.String("mixes", "dense-urban,suburban", "comma-separated traffic mixes (dense-urban, suburban)")
		requests    = flag.Int("requests", 256, "uplink decodes per mix replay")
		concurrency = flag.Int("concurrency", 16, "in-flight decodes offered to the pool")
		occupancy   = flag.Duration("device-occupancy", 2*time.Millisecond, "simulated QPU busy time per decode")
		deadline    = flag.Duration("deadline", 50*time.Millisecond, "per-request decode deadline")
		missBudget  = flag.Float64("miss-budget", 0.02, "largest acceptable deadline-miss rate for the verdict")
		costAware   = flag.Bool("cost-aware", true, "enable $/solve-aware dispatch in the swept pools")
		seed        = flag.Int64("seed", 7, "trace and solver random seed")
	)
	flag.Parse()

	qpuCounts, err := parseCounts(*qpusFlag)
	if err != nil {
		log.Fatalf("fleetsim: -qpus: %v", err)
	}
	mixes := builtinMixes(*requests)
	var selected []mix
	for _, name := range strings.Split(*mixesFlag, ",") {
		m, ok := mixes[strings.TrimSpace(name)]
		if !ok {
			log.Fatalf("fleetsim: unknown mix %q (want dense-urban or suburban)", name)
		}
		selected = append(selected, m)
	}
	if len(selected) == 0 {
		log.Fatal("fleetsim: no traffic mixes selected")
	}

	for _, m := range selected {
		probs, err := buildLoad(m, *seed)
		if err != nil {
			log.Fatalf("fleetsim: mix %s: %v", m.name, err)
		}
		fmt.Printf("mix %s: %d requests, %.0f dB SNR, target BER %.0e, deadline %s\n",
			m.name, len(probs), m.snrDB, m.targetBER, *deadline)
		fmt.Printf("  %-5s %9s %9s %12s %12s %10s %8s\n",
			"qpus", "missrate", "fallback", "solve-spend", "fleet-lease", "energy", "wall")
		var best *point
		for _, n := range qpuCounts {
			pt, err := runPoint(m, probs, n, *concurrency, *occupancy, *deadline, *costAware, *seed)
			if err != nil {
				log.Fatalf("fleetsim: mix %s qpus=%d: %v", m.name, n, err)
			}
			fmt.Printf("  %-5d %8.2f%% %8.1f%% %12s %12s %10s %8s\n",
				pt.qpus, 100*pt.missRate, 100*pt.fallbackShare,
				usd(pt.spendMicroUSD), usd(pt.leaseMicroUSD),
				joule(pt.energyMilliJ), pt.wall.Round(time.Millisecond))
			if pt.missRate <= *missBudget && (best == nil || pt.leaseMicroUSD < best.leaseMicroUSD) {
				cp := pt
				best = &cp
			}
		}
		if best == nil {
			fmt.Printf("  no swept fleet meets the %.1f%% miss budget — add QPUs or relax the deadline\n",
				100**missBudget)
			os.Exit(1)
		}
		fmt.Printf("  cost-optimal fleet for %s: %d QPU(s) — %s lease, %.2f%% miss rate\n",
			m.name, best.qpus, usd(best.leaseMicroUSD), 100*best.missRate)
	}
}

// buildLoad materializes one mix's trace as ready-to-dispatch problems:
// every request carries its coherence window's channel fingerprint, so the
// compiled-channel cache behaves exactly as in serving.
func buildLoad(m mix, seed int64) ([]*backend.Problem, error) {
	mod := modulation.QPSK
	src := rng.New(seed)
	tr, err := trace.GenerateMultiUser(src, m.trace)
	if err != nil {
		return nil, err
	}
	tr.Dataset().NormalizeAveragePower()
	probs := make([]*backend.Problem, len(tr.Requests))
	for i, r := range tr.Requests {
		bits := src.Bits(m.trace.CellUsers * mod.BitsPerSymbol())
		inst, err := mimo.FromParts(src, mimo.Config{
			Mod: mod, Nt: m.trace.CellUsers, Nr: m.trace.Antennas,
			Channel: channel.Fixed{H: r.H, Label: m.name}, SNRdB: m.snrDB,
		}, r.H, bits)
		if err != nil {
			return nil, err
		}
		probs[i] = &backend.Problem{
			Mod: inst.Mod, H: inst.H, Y: inst.Y,
			ChannelKey: core.FingerprintChannel(mod, r.H),
			TargetBER:  m.targetBER,
		}
	}
	return probs, nil
}

// pacedQPU holds the simulated annealer device busy for a fixed occupancy
// window per decode, the same pacing model as BenchmarkShardedServe: fleet
// throughput is devices × occupancy, independent of host core count. Its
// capability descriptor extends the annealer's latency model by the pacing
// window, so the scheduler's deadline projection and $/solve pricing see
// the device the fleet actually leases.
type pacedQPU struct {
	*backend.Annealer
	occupancy time.Duration
	caps      *backend.Capabilities
}

func newPacedQPU(a *backend.Annealer, occupancy time.Duration) *pacedQPU {
	d := &pacedQPU{Annealer: a, occupancy: occupancy}
	caps := *a.Describe()
	base := caps.Latency
	caps.Latency = func(p *backend.Problem) float64 {
		return base(p) + float64(occupancy.Microseconds())
	}
	d.caps = &caps
	return d
}

func (d *pacedQPU) Describe() *backend.Capabilities { return d.caps }

func (d *pacedQPU) Solve(ctx context.Context, p *backend.Problem, src *rng.Source) (*backend.Result, error) {
	res, err := d.Annealer.Solve(ctx, p, src)
	if err != nil {
		return nil, err
	}
	select {
	case <-time.After(d.occupancy):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return res, nil
}

// runPoint replays one mix through a pool of n paced QPUs plus a classical
// SA fallback and prices the run.
func runPoint(m mix, probs []*backend.Problem, n, concurrency int, occupancy, deadline time.Duration, costAware bool, seed int64) (point, error) {
	var workers []backend.Backend
	for i := 0; i < n; i++ {
		qpu, err := backend.NewAnnealer(fmt.Sprintf("qpu%d", i), quamax.Options{
			Graph:        chimera.New(6),
			Params:       anneal.Params{AnnealTimeMicros: 1, NumAnneals: 10},
			ChannelCache: 512,
		})
		if err != nil {
			return point{}, err
		}
		workers = append(workers, newPacedQPU(qpu, occupancy))
	}
	sa := backend.NewClassicalSA("sa", 64, 8)
	planner, err := qos.NewPlanner(nil)
	if err != nil {
		return point{}, err
	}
	s, err := sched.New(sched.Config{
		Pool:         workers,
		Fallback:     sa,
		Planner:      planner,
		CostAware:    costAware,
		DisableBatch: true,
		Seed:         seed,
	})
	if err != nil {
		return point{}, err
	}
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	ctx := context.Background()
	start := time.Now()
	for _, p := range probs {
		wg.Add(1)
		sem <- struct{}{}
		go func(p *backend.Problem) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := s.Dispatch(ctx, p, deadline); err != nil {
				log.Printf("fleetsim: dispatch: %v", err)
			}
		}(p)
	}
	wg.Wait()
	wall := time.Since(start)
	s.Close()

	st := s.Stats()
	pt := point{qpus: n, missRate: st.MissRate(), wall: wall}
	if st.Completed > 0 {
		pt.fallbackShare = float64(st.FallbackDispatches) / float64(st.Completed)
	}
	for _, be := range st.Backends {
		pt.spendMicroUSD += be.SpendMicroUSD
		pt.energyMilliJ += be.EnergyMilliJ
	}
	// The lease bill: every fleet device (the QPUs and the classical
	// fallback host) is paid for the run's whole wall time at its
	// descriptor's device-second rate, busy or idle.
	for _, w := range append(workers, backend.Backend(sa)) {
		pt.leaseMicroUSD += w.Describe().Cost.MicroUSDPerDeviceSecond * wall.Seconds()
	}
	return pt, nil
}

// parseCounts parses a comma-separated list of positive QPU counts.
func parseCounts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad QPU count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty sweep")
	}
	return out, nil
}

// usd renders a micro-USD amount at a readable scale.
func usd(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("$%.2f", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fm$", v/1e3)
	}
	return fmt.Sprintf("%.1fµ$", v)
}

// joule renders a millijoule total at a readable scale.
func joule(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fkJ", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fJ", v/1e3)
	}
	return fmt.Sprintf("%.1fmJ", v)
}
