// Command tracegen synthesizes a many-antenna channel trace in the QMTR
// format consumed by the fig15 experiment and the tracedriven example (a
// stand-in for the Argos 96×8 dataset of paper §5.5 — see internal/trace).
//
// Usage:
//
//	tracegen -out argos96x8.qmtr -uses 500
package main

import (
	"flag"
	"fmt"
	"os"

	"quamax/internal/rng"
	"quamax/internal/trace"
)

func main() {
	var (
		out      = flag.String("out", "trace.qmtr", "output file path")
		antennas = flag.Int("antennas", 96, "base-station antennas")
		users    = flag.Int("users", 8, "static users")
		uses     = flag.Int("uses", 200, "channel uses to generate")
		ricean   = flag.Float64("k", 3, "Ricean K factor (linear)")
		doppler  = flag.Float64("doppler", 0.02, "AR(1) innovation weight per use")
		shadow   = flag.Float64("shadow", 2, "log-normal shadowing std (dB)")
		seed     = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	cfg := trace.GeneratorConfig{
		Antennas:    *antennas,
		Users:       *users,
		Uses:        *uses,
		RiceanK:     *ricean,
		Doppler:     *doppler,
		ShadowStdDB: *shadow,
	}
	ds, err := trace.Generate(rng.New(*seed), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ds.NormalizeAveragePower()
	if err := ds.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d antennas x %d users x %d uses\n", *out, ds.Antennas, ds.Users, len(ds.Snapshots))
}
