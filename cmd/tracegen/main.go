// Command tracegen synthesizes channel traces in the QMTR format consumed by
// the fig15 experiment and the tracedriven example.
//
// Two modes:
//
//   - argos (default): one cell's many-antenna measurement trace, a stand-in
//     for the Argos 96×8 dataset of paper §5.5 (see internal/trace).
//   - multiuser: a data-center request trace — many cells with Zipf-skewed
//     popularity, a large subscriber population, per-user coherence windows —
//     the offered load of the sharded serving tier (BenchmarkShardedServe,
//     examples/tracedriven -multiuser). The QMTR file holds one snapshot per
//     coherence window.
//
// Usage:
//
//	tracegen -out argos96x8.qmtr -uses 500
//	tracegen -mode multiuser -out cells.qmtr -cells 64 -population 1000000 -requests 10000
package main

import (
	"flag"
	"fmt"
	"os"

	"quamax/internal/rng"
	"quamax/internal/trace"
)

func main() {
	var (
		mode     = flag.String("mode", "argos", "trace mode: argos (one cell's measurements) or multiuser (data-center request trace)")
		out      = flag.String("out", "trace.qmtr", "output file path")
		antennas = flag.Int("antennas", 96, "base-station antennas (argos) / AP antennas per cell (multiuser)")
		users    = flag.Int("users", 8, "static users (argos) / multiplexed streams per decode (multiuser)")
		uses     = flag.Int("uses", 200, "channel uses to generate (argos mode)")
		ricean   = flag.Float64("k", 3, "Ricean K factor (linear)")
		doppler  = flag.Float64("doppler", 0.02, "AR(1) innovation weight (per use in argos mode, per window in multiuser mode)")
		shadow   = flag.Float64("shadow", 2, "log-normal shadowing std (dB)")
		seed     = flag.Int64("seed", 1, "generator seed")

		cells      = flag.Int("cells", 64, "cells served (multiuser mode)")
		population = flag.Int("population", 1_000_000, "total subscriber population (multiuser mode)")
		requests   = flag.Int("requests", 10_000, "decode requests to draw (multiuser mode)")
		zipf       = flag.Float64("zipf", 1.1, "Zipf cell-popularity exponent (multiuser mode)")
		window     = flag.Int("window", 16, "mean coherence-window length in decodes (multiuser mode)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch *mode {
	case "argos":
		cfg := trace.GeneratorConfig{
			Antennas:    *antennas,
			Users:       *users,
			Uses:        *uses,
			RiceanK:     *ricean,
			Doppler:     *doppler,
			ShadowStdDB: *shadow,
		}
		ds, err := trace.Generate(rng.New(*seed), cfg)
		if err != nil {
			fail(err)
		}
		ds.NormalizeAveragePower()
		if err := ds.Save(*out); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s: %d antennas x %d users x %d uses\n", *out, ds.Antennas, ds.Users, len(ds.Snapshots))

	case "multiuser":
		cfg := trace.MultiUserConfig{
			Cells:       *cells,
			Users:       *population,
			Requests:    *requests,
			ZipfS:       *zipf,
			Antennas:    *antennas,
			CellUsers:   *users,
			WindowUses:  *window,
			RiceanK:     *ricean,
			Doppler:     *doppler,
			ShadowStdDB: *shadow,
		}
		if *antennas == 96 && *users == 8 {
			// The argos-shaped defaults are oversized for per-decode systems;
			// fall back to the data-center decode shape unless overridden.
			cfg.Antennas = trace.DefaultMultiUserConfig().Antennas
			cfg.CellUsers = trace.DefaultMultiUserConfig().CellUsers
		}
		tr, err := trace.GenerateMultiUser(rng.New(*seed), cfg)
		if err != nil {
			fail(err)
		}
		ds := tr.Dataset()
		ds.NormalizeAveragePower()
		if err := ds.Save(*out); err != nil {
			fail(err)
		}
		counts := tr.CellCounts()
		hottest := 0
		for _, n := range counts {
			if n > hottest {
				hottest = n
			}
		}
		fmt.Printf("wrote %s: %d requests over %d cells (hottest %d), %d coherence windows of %dx%d\n",
			*out, len(tr.Requests), tr.Cells, hottest, tr.Windows, ds.Antennas, ds.Users)

	default:
		fail(fmt.Errorf("tracegen: unknown mode %q (argos or multiuser)", *mode))
	}
}
