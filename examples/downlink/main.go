// Downlink: vector-perturbation precoding end to end over the protocol-v5
// fronthaul. The data center owns the channel estimate for a downlink
// coherence window, so the AP registers H once (Client.RegisterChannel) and
// streams user-data symbol vectors as O(Nu) precode-by-handle frames
// (Client.PrecodeWithChannel). The pool solves each NP-hard VP search
// min_v ‖P(s+τv)‖² on the same annealer stack that serves uplink decodes —
// ChannelKey-tagged, so same-window searches batch into shared runs over the
// compiled VP program — and returns the perturbation. The example then plays
// transmitter AND users: it forms x = P(s+τv), normalizes transmit power,
// adds receiver noise, recovers each user's symbol with the blind modulo-τ
// reduction, and compares bit errors and effective SNR against plain
// channel-inversion (zero-forcing) precoding at the same power budget.
//
//	go run ./examples/downlink
package main

import (
	"fmt"
	"log"
	"math"
	"net"
	"sync"

	"quamax"
	"quamax/internal/backend"
	"quamax/internal/channel"
	"quamax/internal/fronthaul"
	"quamax/internal/linalg"
	"quamax/internal/precoding"
	"quamax/internal/rng"
	"quamax/internal/sched"
)

const (
	users    = 8
	antennas = 8
	windows  = 3  // coherence windows (one estimated H each)
	vectors  = 14 // user-data symbol vectors per window (one LTE slot)
	// One perturbation bit per dimension (v ∈ {−1,0}²): at 8 users that is a
	// 16-spin search the annealer solves nearly optimally, worth ~6 dB of
	// transmit power on Rayleigh channels. The deeper alphabets double the
	// spin count and, as Kasi et al. (arXiv:2102.12540) observe, annealer
	// solution quality falls off with VP problem size faster than the extra
	// lattice freedom pays back.
	perturbBits = 1
	rxSNRdB     = 8.0 // per-user receive SNR at unit power amplification
)

func main() {
	mod := quamax.QPSK
	src := rng.New(7)

	// Data center: a two-QPU pool behind the fronthaul TCP protocol — the
	// same pool that would serve uplink decodes.
	var pool []backend.Backend
	for _, name := range []string{"qpu0", "qpu1"} {
		qpu, err := backend.NewAnnealer(name, quamax.Options{})
		if err != nil {
			log.Fatal(err)
		}
		pool = append(pool, qpu)
	}
	scheduler, err := sched.New(sched.Config{Pool: pool, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	server := fronthaul.NewPoolServer(scheduler)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go server.Serve(l)
	fmt.Printf("data center listening on %s (fronthaul protocol v%d)\n",
		l.Addr(), fronthaul.ProtocolVersion)

	client, err := fronthaul.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	var (
		vpBits, vpErrs, zfErrs int
		gammaVP, gammaZF       float64
	)
	for w := 0; w < windows; w++ {
		// One channel estimate per coherence window, registered once.
		h := channel.Rayleigh{}.Generate(src, users, antennas)
		prog, err := precoding.Compile(mod, h, perturbBits)
		if err != nil {
			log.Fatal(err)
		}
		rc, err := client.RegisterChannel(mod, h)
		if err != nil {
			log.Fatal(err)
		}

		// A window of symbol vectors precoded by handle, pipelined so the
		// pool can batch same-window searches into shared annealer runs.
		type tx struct {
			bits []byte
			s    []complex128
			resp *fronthaul.PrecodeResponse
			err  error
		}
		txs := make([]tx, vectors)
		var wg sync.WaitGroup
		for i := 0; i < vectors; i++ {
			bits := src.Bits(users * mod.BitsPerSymbol())
			txs[i].bits = bits
			txs[i].s = mod.MapGrayVector(bits)
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				txs[i].resp, txs[i].err = client.PrecodeWithChannel(rc, txs[i].s, perturbBits, 0, 0)
			}(i)
		}
		wg.Wait()

		batched := 0
		for i := range txs {
			if txs[i].err != nil {
				log.Fatalf("window %d vector %d: %v", w, i, txs[i].err)
			}
			if txs[i].resp.Batched > batched {
				batched = txs[i].resp.Batched
			}
			ve, ze := simulate(src, prog, txs[i].s, txs[i].bits, txs[i].resp.V)
			vpErrs += ve
			zfErrs += ze
			vpBits += len(txs[i].bits)
			gammaVP += txs[i].resp.Energy
			gammaZF += prog.ZFGamma(txs[i].s)
		}
		fmt.Printf("window %d: %d vectors precoded, largest shared run %d searches\n",
			w, vectors, batched)
	}

	total := float64(windows * vectors)
	fmt.Printf("\nmean transmit power γ: VP %.1f vs channel inversion %.1f (effective SNR gain %+.1f dB)\n",
		gammaVP/total, gammaZF/total, 10*math.Log10(gammaZF/gammaVP))
	fmt.Printf("downlink BER at %g dB: VP %.4f vs channel inversion %.4f\n",
		rxSNRdB, float64(vpErrs)/float64(vpBits), float64(zfErrs)/float64(vpBits))

	l.Close()
	scheduler.Close()
	st := scheduler.Stats()
	fmt.Printf("\npool stats:\n%s\n", st)
	fmt.Printf("\ncompile amortization: %d channel compiles served %d searches (%.0f%% cache hit)\n",
		st.ChannelCache.Misses, st.Completed, 100*st.ChannelCache.HitRate())
}

// simulate plays one downlink transmission twice — VP with the returned
// perturbation, and plain channel inversion — at the same radiated power
// budget Nu·Es (what sending the bare symbols would cost), and counts each
// scheme's bit errors across the users. The base station scales the precoded
// vector to the budget; each user sees s_k + τ·v_k plus noise amplified by
// √(γ/budget) after undoing the (broadcast) scaling — the amplification VP
// exists to minimize — then strips the perturbation with the blind modulo-τ
// reduction and slices.
func simulate(src *rng.Source, prog *precoding.Program, s []complex128, bits []byte, v []complex128) (vpErrs, zfErrs int) {
	mod := prog.DataMod()
	budget := mod.AvgSymbolEnergy() * float64(len(s))
	sigma := math.Sqrt(mod.AvgSymbolEnergy()) * math.Pow(10, -rxSNRdB/20)
	count := func(x []complex128) int {
		gamma := linalg.Norm2(x)
		alpha := math.Sqrt(budget / gamma)
		y := linalg.MulVec(prog.Channel(), x) // = s + τ·v exactly (H·P = I)
		scaled := make([]complex128, len(y))
		for k := range y {
			scaled[k] = y[k] + complex(sigma/alpha, 0)*src.ComplexNorm()
		}
		rx := precoding.Receive(mod, prog.Tau(), scaled)
		errs := 0
		got := mod.DemapGrayVector(rx)
		for i := range bits {
			if got[i] != bits[i] {
				errs++
			}
		}
		return errs
	}
	return count(prog.Transmit(s, v)), count(prog.Transmit(s, make([]complex128, len(s))))
}
