// Tracedriven: the paper's §5.5 evaluation flow on the serving path — decode
// 8×8 channel uses drawn from a many-antenna trace (the synthetic Argos
// stand-in, or a real QMTR file produced by cmd/tracegen) at 25–35 dB SNR.
// Instead of calling the decoder directly, every channel use is dispatched
// through the QPU pool scheduler with a target BER, so the replay exercises
// exactly what a C-RAN data center runs: the TTS planner sizes each
// request's read budget, compatible requests share batched annealer runs,
// and requests the annealer cannot serve fall back to classical SA.
//
//	go run ./examples/tracedriven [trace.qmtr]
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"

	"quamax"
	"quamax/internal/backend"
	"quamax/internal/channel"
	"quamax/internal/mimo"
	"quamax/internal/qos"
	"quamax/internal/rng"
	"quamax/internal/sched"
	"quamax/internal/trace"
)

const (
	uses      = 10
	pick      = 8
	targetBER = 1e-4
)

func main() {
	src := rng.New(2024)

	var ds *trace.Dataset
	var err error
	if len(os.Args) > 1 {
		ds, err = trace.Load(os.Args[1])
		fmt.Printf("loaded trace %s\n", os.Args[1])
	} else {
		cfg := trace.DefaultGeneratorConfig()
		cfg.Uses = uses
		ds, err = trace.Generate(src, cfg)
		fmt.Println("synthesized Argos-like 96x8 trace (pass a .qmtr path to use a real one)")
	}
	if err != nil {
		log.Fatal(err)
	}
	ds.NormalizeAveragePower()

	// Data center: two simulated QPUs, a classical-SA fallback, and the
	// TTS-driven anneal-budget planner (built-in coefficients).
	var pool []backend.Backend
	for _, name := range []string{"qpu0", "qpu1"} {
		qpu, err := backend.NewAnnealer(name, quamax.Options{AmortizeParallel: true})
		if err != nil {
			log.Fatal(err)
		}
		pool = append(pool, qpu)
	}
	planner, err := qos.NewPlanner(nil)
	if err != nil {
		log.Fatal(err)
	}
	scheduler, err := sched.New(sched.Config{
		Pool:     pool,
		Fallback: backend.NewClassicalSA("sa", 128, 100),
		Planner:  planner,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, mod := range []quamax.Modulation{quamax.BPSK, quamax.QPSK} {
		fmt.Printf("\n%v over %d channel uses (8 of %d antennas per use, 25-35 dB, target BER %g):\n",
			mod, uses, ds.Antennas, targetBER)

		type job struct {
			in  *mimo.Instance
			snr float64
		}
		jobs := make([]job, uses)
		for use := 0; use < uses; use++ {
			h, err := ds.Sample(src, use, pick)
			if err != nil {
				log.Fatal(err)
			}
			snr := 25 + 10*src.Float64()
			bits := src.Bits(ds.Users * mod.BitsPerSymbol())
			inst, err := mimo.FromParts(src, mimo.Config{
				Mod: mod, Nt: ds.Users, Nr: pick,
				Channel: channel.Fixed{H: h, Label: "trace"}, SNRdB: snr,
			}, h, bits)
			if err != nil {
				log.Fatal(err)
			}
			jobs[use] = job{in: inst, snr: snr}
		}

		// Dispatch every channel use concurrently — the §5.5 opportunity to
		// parallelize different problems, here expressed as pool pressure
		// that the scheduler turns into shared batched runs.
		type result struct {
			res *backend.Result
			err error
		}
		results := make([]result, uses)
		var wg sync.WaitGroup
		for use, j := range jobs {
			wg.Add(1)
			go func(use int, j job) {
				defer wg.Done()
				// No wall deadline: the target BER alone drives the planned
				// budget, and the compute column reports modeled device time.
				res, err := scheduler.Dispatch(context.Background(), &backend.Problem{
					Mod: j.in.Mod, H: j.in.H, Y: j.in.Y, TargetBER: targetBER,
				}, 0)
				results[use] = result{res, err}
			}(use, j)
		}
		wg.Wait()

		fmt.Printf("%4s  %8s  %10s  %14s  %8s  %7s\n",
			"use", "SNR(dB)", "bit errs", "compute (µs)", "backend", "batched")
		for use, r := range results {
			if r.err != nil {
				log.Fatalf("use %d: %v", use, r.err)
			}
			fmt.Printf("%4d  %8.1f  %10d  %14.1f  %8s  %7d\n",
				use, jobs[use].snr, jobs[use].in.BitErrors(r.res.Bits),
				r.res.ComputeMicros, r.res.Backend, r.res.Batched)
		}
	}

	scheduler.Close()
	fmt.Printf("\npool stats:\n%s\n", scheduler.Stats())
	fmt.Printf("\nplanner stats:\n%s\n", planner.Stats())
}
