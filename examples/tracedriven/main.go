// Tracedriven: the paper's §5.5 evaluation flow — decode 8×8 channel uses
// drawn from a many-antenna trace (the synthetic Argos stand-in, or a real
// QMTR file produced by cmd/tracegen) at 25–35 dB SNR, reporting TTB/TTF per
// channel use.
//
//	go run ./examples/tracedriven [trace.qmtr]
package main

import (
	"fmt"
	"log"
	"os"

	"quamax"
	"quamax/internal/channel"
	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/rng"
	"quamax/internal/trace"
)

const (
	uses       = 10
	pick       = 8
	frameBytes = 1500
)

func main() {
	src := rng.New(2024)

	var ds *trace.Dataset
	var err error
	if len(os.Args) > 1 {
		ds, err = trace.Load(os.Args[1])
		fmt.Printf("loaded trace %s\n", os.Args[1])
	} else {
		cfg := trace.DefaultGeneratorConfig()
		cfg.Uses = uses
		ds, err = trace.Generate(src, cfg)
		fmt.Println("synthesized Argos-like 96x8 trace (pass a .qmtr path to use a real one)")
	}
	if err != nil {
		log.Fatal(err)
	}
	ds.NormalizeAveragePower()

	dec, err := quamax.NewDecoder(quamax.Options{AmortizeParallel: true})
	if err != nil {
		log.Fatal(err)
	}

	for _, mod := range []quamax.Modulation{quamax.BPSK, quamax.QPSK} {
		fmt.Printf("\n%v over %d channel uses (8 of %d antennas per use, 25-35 dB):\n",
			mod, uses, ds.Antennas)
		fmt.Printf("%4s  %8s  %10s  %12s  %12s\n", "use", "SNR(dB)", "bit errs", "TTB 1e-6", "TTF 1e-4")
		var ttbs, ttfs []float64
		for use := 0; use < uses; use++ {
			h, err := ds.Sample(src, use, pick)
			if err != nil {
				log.Fatal(err)
			}
			snr := 25 + 10*src.Float64()
			bits := src.Bits(ds.Users * mod.BitsPerSymbol())
			inst, err := mimo.FromParts(src, mimo.Config{
				Mod: mod, Nt: ds.Users, Nr: pick,
				Channel: channel.Fixed{H: h, Label: "trace"}, SNRdB: snr,
			}, h, bits)
			if err != nil {
				log.Fatal(err)
			}
			out, err := dec.DecodeInstance(inst, src)
			if err != nil {
				log.Fatal(err)
			}
			ttb := out.Distribution.TTB(1e-6, out.WallMicrosPerAnneal, out.Pf)
			ttf := out.Distribution.TTF(1e-4, frameBytes*8, out.WallMicrosPerAnneal, out.Pf)
			ttbs = append(ttbs, ttb)
			ttfs = append(ttfs, ttf)
			fmt.Printf("%4d  %8.1f  %10d  %12.2f  %12.2f\n",
				use, snr, inst.BitErrors(out.Bits), ttb, ttf)
		}
		fmt.Printf("median TTB %.2f µs, median TTF %.2f µs (paper: ≤10 µs at these SNRs)\n",
			metrics.Median(ttbs), metrics.Median(ttfs))
	}
}
