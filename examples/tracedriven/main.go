// Tracedriven: the paper's §5.5 evaluation flow on the serving path — decode
// 8×8 channel uses drawn from a many-antenna trace (the synthetic Argos
// stand-in, or a real QMTR file produced by cmd/tracegen) at 25–35 dB SNR.
// Instead of calling the decoder directly, every channel use is dispatched
// through the QPU pool scheduler with a target BER, so the replay exercises
// exactly what a C-RAN data center runs: the TTS planner sizes each
// request's read budget, compatible requests share batched annealer runs,
// and requests the annealer cannot serve fall back to classical SA.
//
// Each channel use is replayed as a COHERENCE WINDOW: one estimated H
// carries several OFDM symbols (paper footnote 2), so all of a window's
// symbols are dispatched with the channel's fingerprint as their ChannelKey.
// The pool compiles each channel once (couplings, embedding, prepared
// physical program), gathers same-window symbols into shared annealer runs,
// and only rewrites per-symbol biases — the cache hit/miss line in the final
// pool stats shows the amortization.
//
// The replay runs fully instrumented: a telemetry recorder traces every
// request through admit → plan → queue → gather → compile → solve → respond,
// and the run ends with the live per-stage latency breakdown, the
// deadline-slack histogram, and the trace-to-counter reconciliation the
// telemetry plane guarantees (submitted == completed + failed == traces).
// Pass -trace-out to also write the JSON dump tools/benchjson ingests.
//
// With -multiuser the replay switches to the data-center view (PR 8): a
// Zipf-skewed multi-cell request trace (internal/trace.GenerateMultiUser) is
// dispatched through the sharded router front tier — N independent scheduler
// pools, channel-affinity consistent hashing keeping every coherence window's
// compiled channel sticky to one shard — and the run ends with the per-shard
// PoolStats breakdown, the merged aggregate, and the affinity/cache evidence.
//
//	go run ./examples/tracedriven [-trace-out dump.json] [trace.qmtr]
//	go run ./examples/tracedriven -multiuser [-shards 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"quamax"
	"quamax/internal/backend"
	"quamax/internal/channel"
	"quamax/internal/core"
	"quamax/internal/mimo"
	"quamax/internal/qos"
	"quamax/internal/rng"
	"quamax/internal/router"
	"quamax/internal/sched"
	"quamax/internal/telemetry"
	"quamax/internal/trace"
)

const (
	uses      = 10
	pick      = 8
	window    = 4 // OFDM symbols per coherence window (one H, many y)
	targetBER = 1e-4
	// deadline is each dispatch's processing budget: generous enough that the
	// planner's budget fits, tight enough that the slack histogram is
	// informative about headroom.
	deadline = 250 * time.Millisecond
)

func main() {
	traceOut := flag.String("trace-out", "", "write the JSON telemetry dump here")
	multiuser := flag.Bool("multiuser", false, "replay a multi-cell request trace through the sharded router tier")
	shards := flag.Int("shards", 4, "scheduler pools behind the router (with -multiuser)")
	flag.Parse()
	if *multiuser {
		runMultiUser(*shards)
		return
	}
	src := rng.New(2024)

	var ds *trace.Dataset
	var err error
	if flag.NArg() > 0 {
		ds, err = trace.Load(flag.Arg(0))
		fmt.Printf("loaded trace %s\n", flag.Arg(0))
	} else {
		cfg := trace.DefaultGeneratorConfig()
		cfg.Uses = uses
		ds, err = trace.Generate(src, cfg)
		fmt.Println("synthesized Argos-like 96x8 trace (pass a .qmtr path to use a real one)")
	}
	if err != nil {
		log.Fatal(err)
	}
	ds.NormalizeAveragePower()

	// Data center: two simulated QPUs, a classical-SA fallback, and the
	// TTS-driven anneal-budget planner (built-in coefficients), all feeding
	// one telemetry recorder.
	rec := telemetry.New(telemetry.Config{})
	var pool []backend.Backend
	for _, name := range []string{"qpu0", "qpu1"} {
		qpu, err := backend.NewAnnealer(name, quamax.Options{AmortizeParallel: true})
		if err != nil {
			log.Fatal(err)
		}
		qpu.Decoder().SetTelemetry(rec)
		pool = append(pool, qpu)
	}
	planner, err := qos.NewPlanner(nil)
	if err != nil {
		log.Fatal(err)
	}
	planner.Telemetry = rec
	scheduler, err := sched.New(sched.Config{
		Pool:      pool,
		Fallback:  backend.NewClassicalSA("sa", 128, 100),
		Planner:   planner,
		Seed:      7,
		Telemetry: rec,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, mod := range []quamax.Modulation{quamax.BPSK, quamax.QPSK} {
		fmt.Printf("\n%v over %d coherence windows × %d symbols (8 of %d antennas per use, 25-35 dB, target BER %g):\n",
			mod, uses, window, ds.Antennas, targetBER)

		type symbol struct {
			in  *mimo.Instance
			key core.ChannelKey
		}
		type windowJobs struct {
			snr     float64
			symbols []symbol
		}
		jobs := make([]windowJobs, uses)
		for use := 0; use < uses; use++ {
			h, err := ds.Sample(src, use, pick)
			if err != nil {
				log.Fatal(err)
			}
			snr := 25 + 10*src.Float64()
			key := core.FingerprintChannel(mod, h)
			w := windowJobs{snr: snr, symbols: make([]symbol, window)}
			// One channel estimate, `window` transmitted symbols through it.
			for sym := 0; sym < window; sym++ {
				bits := src.Bits(ds.Users * mod.BitsPerSymbol())
				inst, err := mimo.FromParts(src, mimo.Config{
					Mod: mod, Nt: ds.Users, Nr: pick,
					Channel: channel.Fixed{H: h, Label: "trace"}, SNRdB: snr,
				}, h, bits)
				if err != nil {
					log.Fatal(err)
				}
				w.symbols[sym] = symbol{in: inst, key: key}
			}
			jobs[use] = w
		}

		// Dispatch every symbol of every window concurrently — the §5.5
		// opportunity to parallelize different problems, here expressed as
		// pool pressure that the coherence-aware scheduler turns into shared
		// batched runs over already-compiled channels.
		type result struct {
			res *backend.Result
			err error
		}
		results := make([][]result, uses)
		var wg sync.WaitGroup
		for use := range jobs {
			results[use] = make([]result, window)
			for sym, sb := range jobs[use].symbols {
				wg.Add(1)
				go func(use, sym int, sb symbol) {
					defer wg.Done()
					// No wall deadline: the target BER alone drives the
					// planned budget.
					res, err := scheduler.Dispatch(context.Background(), &backend.Problem{
						Mod: sb.in.Mod, H: sb.in.H, Y: sb.in.Y,
						TargetBER: targetBER, ChannelKey: sb.key,
					}, deadline)
					results[use][sym] = result{res, err}
				}(use, sym, sb)
			}
		}
		wg.Wait()

		fmt.Printf("%4s  %8s  %10s  %14s  %10s\n",
			"use", "SNR(dB)", "bit errs", "compute (µs)", "backends")
		for use, rs := range results {
			errs, compute := 0, 0.0
			backends := map[string]bool{}
			for sym, r := range rs {
				if r.err != nil {
					log.Fatalf("use %d symbol %d: %v", use, sym, r.err)
				}
				errs += jobs[use].symbols[sym].in.BitErrors(r.res.Bits)
				compute += r.res.ComputeMicros
				backends[r.res.Backend] = true
			}
			names := ""
			for name := range backends {
				if names != "" {
					names += "+"
				}
				names += name
			}
			fmt.Printf("%4d  %8.1f  %10d  %14.1f  %10s\n",
				use, jobs[use].snr, errs, compute, names)
		}
	}

	scheduler.Close()
	st := scheduler.Stats()
	fmt.Printf("\npool stats:\n%s\n", st)
	fmt.Printf("\nplanner stats:\n%s\n", planner.Stats())

	// The live per-stage breakdown: where each request's wall time went.
	sn := rec.Snapshot()
	fmt.Printf("\nper-stage latency (all %d requests):\n", sn.Traces)
	fmt.Printf("%-8s %8s %10s %10s %10s %10s\n", "stage", "count", "mean", "p50", "p95", "max")
	for i, name := range telemetry.StageNames() {
		h := sn.Stages[i]
		if h.Count == 0 {
			continue
		}
		s := telemetry.Summarize(h)
		fmt.Printf("%-8s %8d %9.0fµs %9.0fµs %9.0fµs %9.0fµs\n",
			name, s.Count, s.MeanMicros, s.P50Micros, s.P95Micros, s.MaxMicros)
	}

	// Deadline slack: how much of each request's budget was left at respond
	// time (every dispatch above carried the same deadline).
	fmt.Printf("\ndeadline slack (budget %v, %d met / %d missed):\n",
		deadline, sn.SlackMet.Count, sn.SlackMissed.Count)
	printSlackHistogram(sn.SlackMet)

	// The reconciliation the telemetry plane guarantees: every submitted
	// request finished as exactly one trace.
	fmt.Printf("\nreconciliation: submitted=%d completed+failed=%d traces=%d (compile cache %d/%d hits)\n",
		st.Submitted, st.Completed+st.Failed, sn.Traces, sn.CompileHits, sn.CompileHits+sn.CompileMisses)

	if *traceOut != "" {
		if err := telemetry.BuildDump(rec, &st).WriteFile(*traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote telemetry dump (%d traces) to %s\n", rec.TraceCount(), *traceOut)
	}
}

// printSlackHistogram renders the nonzero buckets of a slack histogram as
// ASCII bars, one row per occupied latency bucket.
func printSlackHistogram(h telemetry.Hist) {
	if h.Count == 0 {
		fmt.Println("  (no deadline-bearing requests)")
		return
	}
	var peak uint64
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		bar := make([]byte, (40*c+peak-1)/peak)
		for j := range bar {
			bar[j] = '#'
		}
		fmt.Printf("  ≤%9.0fµs %6d %s\n", telemetry.BucketBound(i), c, bar)
	}
}

// runMultiUser is the -multiuser replay: a Zipf multi-cell request trace
// through the router-fronted shard fleet.
func runMultiUser(nShards int) {
	if nShards < 1 {
		log.Fatal("need at least one shard")
	}
	src := rng.New(5005)
	cfg := trace.DefaultMultiUserConfig()
	cfg.Cells = 16
	// A compact population keeps users returning, so coherence windows are
	// revisited and the per-shard channel caches actually amortize.
	cfg.Users = 64
	cfg.Requests = 240
	cfg.WindowUses = 8
	cfg.Antennas, cfg.CellUsers = 4, 4
	tr, err := trace.GenerateMultiUser(src, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Dataset() shares the window matrices, so normalizing it normalizes the
	// per-request channels in place.
	tr.Dataset().NormalizeAveragePower()
	fmt.Printf("multi-user trace: %d requests, %d cells (Zipf s=%g), %d coherence windows\n",
		len(tr.Requests), tr.Cells, cfg.ZipfS, tr.Windows)

	// The shard fleet: one QPU pool + SA fallback per shard, one shared
	// telemetry recorder (traces carry the shard index).
	rec := telemetry.New(telemetry.Config{})
	var schedulers []*sched.Scheduler
	var shards []router.Shard
	for i := 0; i < nShards; i++ {
		qpu, err := backend.NewAnnealer(fmt.Sprintf("s%d/qpu0", i), quamax.Options{AmortizeParallel: true})
		if err != nil {
			log.Fatal(err)
		}
		qpu.Decoder().SetTelemetry(rec)
		s, err := sched.New(sched.Config{
			Pool:      []backend.Backend{qpu},
			Fallback:  backend.NewClassicalSA(fmt.Sprintf("s%d/sa", i), 128, 100),
			Seed:      int64(100 + i),
			ShardID:   i,
			Telemetry: rec,
		})
		if err != nil {
			log.Fatal(err)
		}
		schedulers = append(schedulers, s)
		shards = append(shards, s)
	}
	rt, err := router.New(router.Config{Shards: shards, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	// The whole trace is offered at once, so per-request budgets must absorb
	// the queueing delay of 240 requests on nShards single-QPU pools.
	const muDeadline = 10 * time.Second

	const mod = quamax.BPSK
	type outcome struct {
		shard int
		res   *backend.Result
		err   error
	}
	outcomes := make([]outcome, len(tr.Requests))
	var wg sync.WaitGroup
	for i, r := range tr.Requests {
		key := core.FingerprintChannel(mod, r.H)
		bits := src.Bits(cfg.CellUsers * mod.BitsPerSymbol())
		inst, err := mimo.FromParts(src, mimo.Config{
			Mod: mod, Nt: cfg.CellUsers, Nr: cfg.Antennas,
			Channel: channel.Fixed{H: r.H, Label: "cell"}, SNRdB: 28,
		}, r.H, bits)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(i int, key core.ChannelKey, inst *mimo.Instance) {
			defer wg.Done()
			res, derr := rt.Dispatch(context.Background(), &backend.Problem{
				Mod: inst.Mod, H: inst.H, Y: inst.Y,
				TargetBER: targetBER, ChannelKey: key,
			}, muDeadline)
			outcomes[i] = outcome{shard: rt.ShardFor(key), res: res, err: derr}
		}(i, key, inst)
	}
	wg.Wait()
	for _, s := range schedulers {
		s.Close()
	}

	for i, o := range outcomes {
		if o.err != nil {
			log.Fatalf("request %d: %v", i, o.err)
		}
	}

	fmt.Printf("\nper-shard breakdown (affinity keeps each window on one shard):\n")
	for i, st := range rt.ShardStats() {
		fmt.Printf("shard %d: submitted=%d completed=%d cache hits=%d misses=%d (hit rate %.0f%%)\n",
			i, st.Submitted, st.Completed, st.ChannelCache.Hits, st.ChannelCache.Misses,
			100*st.ChannelCache.HitRate())
	}
	agg := rt.Stats()
	fmt.Printf("\naggregate (PoolStats.Merge of the breakdown):\n%s\n", agg)
	fmt.Printf("reconciliation: submitted=%d completed+failed=%d across %d shards\n",
		agg.Submitted, agg.Completed+agg.Failed, nShards)

	// Shard attribution rides the telemetry traces too.
	perShard := make([]int, nShards)
	for _, t := range rec.Traces() {
		perShard[t.Shard]++
	}
	fmt.Printf("telemetry traces per shard: %v\n", perShard)
}
