// Tracedriven: the paper's §5.5 evaluation flow on the serving path — decode
// 8×8 channel uses drawn from a many-antenna trace (the synthetic Argos
// stand-in, or a real QMTR file produced by cmd/tracegen) at 25–35 dB SNR.
// Instead of calling the decoder directly, every channel use is dispatched
// through the QPU pool scheduler with a target BER, so the replay exercises
// exactly what a C-RAN data center runs: the TTS planner sizes each
// request's read budget, compatible requests share batched annealer runs,
// and requests the annealer cannot serve fall back to classical SA.
//
// Each channel use is replayed as a COHERENCE WINDOW: one estimated H
// carries several OFDM symbols (paper footnote 2), so all of a window's
// symbols are dispatched with the channel's fingerprint as their ChannelKey.
// The pool compiles each channel once (couplings, embedding, prepared
// physical program), gathers same-window symbols into shared annealer runs,
// and only rewrites per-symbol biases — the cache hit/miss line in the final
// pool stats shows the amortization.
//
// The replay runs fully instrumented: a telemetry recorder traces every
// request through admit → plan → queue → gather → compile → solve → respond,
// and the run ends with the live per-stage latency breakdown, the
// deadline-slack histogram, and the trace-to-counter reconciliation the
// telemetry plane guarantees (submitted == completed + failed == traces).
// Pass -trace-out to also write the JSON dump tools/benchjson ingests.
//
//	go run ./examples/tracedriven [-trace-out dump.json] [trace.qmtr]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"quamax"
	"quamax/internal/backend"
	"quamax/internal/channel"
	"quamax/internal/core"
	"quamax/internal/mimo"
	"quamax/internal/qos"
	"quamax/internal/rng"
	"quamax/internal/sched"
	"quamax/internal/telemetry"
	"quamax/internal/trace"
)

const (
	uses      = 10
	pick      = 8
	window    = 4 // OFDM symbols per coherence window (one H, many y)
	targetBER = 1e-4
	// deadline is each dispatch's processing budget: generous enough that the
	// planner's budget fits, tight enough that the slack histogram is
	// informative about headroom.
	deadline = 250 * time.Millisecond
)

func main() {
	traceOut := flag.String("trace-out", "", "write the JSON telemetry dump here")
	flag.Parse()
	src := rng.New(2024)

	var ds *trace.Dataset
	var err error
	if flag.NArg() > 0 {
		ds, err = trace.Load(flag.Arg(0))
		fmt.Printf("loaded trace %s\n", flag.Arg(0))
	} else {
		cfg := trace.DefaultGeneratorConfig()
		cfg.Uses = uses
		ds, err = trace.Generate(src, cfg)
		fmt.Println("synthesized Argos-like 96x8 trace (pass a .qmtr path to use a real one)")
	}
	if err != nil {
		log.Fatal(err)
	}
	ds.NormalizeAveragePower()

	// Data center: two simulated QPUs, a classical-SA fallback, and the
	// TTS-driven anneal-budget planner (built-in coefficients), all feeding
	// one telemetry recorder.
	rec := telemetry.New(telemetry.Config{})
	var pool []backend.Backend
	for _, name := range []string{"qpu0", "qpu1"} {
		qpu, err := backend.NewAnnealer(name, quamax.Options{AmortizeParallel: true})
		if err != nil {
			log.Fatal(err)
		}
		qpu.Decoder().SetTelemetry(rec)
		pool = append(pool, qpu)
	}
	planner, err := qos.NewPlanner(nil)
	if err != nil {
		log.Fatal(err)
	}
	planner.Telemetry = rec
	scheduler, err := sched.New(sched.Config{
		Pool:      pool,
		Fallback:  backend.NewClassicalSA("sa", 128, 100),
		Planner:   planner,
		Seed:      7,
		Telemetry: rec,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, mod := range []quamax.Modulation{quamax.BPSK, quamax.QPSK} {
		fmt.Printf("\n%v over %d coherence windows × %d symbols (8 of %d antennas per use, 25-35 dB, target BER %g):\n",
			mod, uses, window, ds.Antennas, targetBER)

		type symbol struct {
			in  *mimo.Instance
			key core.ChannelKey
		}
		type windowJobs struct {
			snr     float64
			symbols []symbol
		}
		jobs := make([]windowJobs, uses)
		for use := 0; use < uses; use++ {
			h, err := ds.Sample(src, use, pick)
			if err != nil {
				log.Fatal(err)
			}
			snr := 25 + 10*src.Float64()
			key := core.FingerprintChannel(mod, h)
			w := windowJobs{snr: snr, symbols: make([]symbol, window)}
			// One channel estimate, `window` transmitted symbols through it.
			for sym := 0; sym < window; sym++ {
				bits := src.Bits(ds.Users * mod.BitsPerSymbol())
				inst, err := mimo.FromParts(src, mimo.Config{
					Mod: mod, Nt: ds.Users, Nr: pick,
					Channel: channel.Fixed{H: h, Label: "trace"}, SNRdB: snr,
				}, h, bits)
				if err != nil {
					log.Fatal(err)
				}
				w.symbols[sym] = symbol{in: inst, key: key}
			}
			jobs[use] = w
		}

		// Dispatch every symbol of every window concurrently — the §5.5
		// opportunity to parallelize different problems, here expressed as
		// pool pressure that the coherence-aware scheduler turns into shared
		// batched runs over already-compiled channels.
		type result struct {
			res *backend.Result
			err error
		}
		results := make([][]result, uses)
		var wg sync.WaitGroup
		for use := range jobs {
			results[use] = make([]result, window)
			for sym, sb := range jobs[use].symbols {
				wg.Add(1)
				go func(use, sym int, sb symbol) {
					defer wg.Done()
					// No wall deadline: the target BER alone drives the
					// planned budget.
					res, err := scheduler.Dispatch(context.Background(), &backend.Problem{
						Mod: sb.in.Mod, H: sb.in.H, Y: sb.in.Y,
						TargetBER: targetBER, ChannelKey: sb.key,
					}, deadline)
					results[use][sym] = result{res, err}
				}(use, sym, sb)
			}
		}
		wg.Wait()

		fmt.Printf("%4s  %8s  %10s  %14s  %10s\n",
			"use", "SNR(dB)", "bit errs", "compute (µs)", "backends")
		for use, rs := range results {
			errs, compute := 0, 0.0
			backends := map[string]bool{}
			for sym, r := range rs {
				if r.err != nil {
					log.Fatalf("use %d symbol %d: %v", use, sym, r.err)
				}
				errs += jobs[use].symbols[sym].in.BitErrors(r.res.Bits)
				compute += r.res.ComputeMicros
				backends[r.res.Backend] = true
			}
			names := ""
			for name := range backends {
				if names != "" {
					names += "+"
				}
				names += name
			}
			fmt.Printf("%4d  %8.1f  %10d  %14.1f  %10s\n",
				use, jobs[use].snr, errs, compute, names)
		}
	}

	scheduler.Close()
	st := scheduler.Stats()
	fmt.Printf("\npool stats:\n%s\n", st)
	fmt.Printf("\nplanner stats:\n%s\n", planner.Stats())

	// The live per-stage breakdown: where each request's wall time went.
	sn := rec.Snapshot()
	fmt.Printf("\nper-stage latency (all %d requests):\n", sn.Traces)
	fmt.Printf("%-8s %8s %10s %10s %10s %10s\n", "stage", "count", "mean", "p50", "p95", "max")
	for i, name := range telemetry.StageNames() {
		h := sn.Stages[i]
		if h.Count == 0 {
			continue
		}
		s := telemetry.Summarize(h)
		fmt.Printf("%-8s %8d %9.0fµs %9.0fµs %9.0fµs %9.0fµs\n",
			name, s.Count, s.MeanMicros, s.P50Micros, s.P95Micros, s.MaxMicros)
	}

	// Deadline slack: how much of each request's budget was left at respond
	// time (every dispatch above carried the same deadline).
	fmt.Printf("\ndeadline slack (budget %v, %d met / %d missed):\n",
		deadline, sn.SlackMet.Count, sn.SlackMissed.Count)
	printSlackHistogram(sn.SlackMet)

	// The reconciliation the telemetry plane guarantees: every submitted
	// request finished as exactly one trace.
	fmt.Printf("\nreconciliation: submitted=%d completed+failed=%d traces=%d (compile cache %d/%d hits)\n",
		st.Submitted, st.Completed+st.Failed, sn.Traces, sn.CompileHits, sn.CompileHits+sn.CompileMisses)

	if *traceOut != "" {
		if err := telemetry.BuildDump(rec, &st).WriteFile(*traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote telemetry dump (%d traces) to %s\n", rec.TraceCount(), *traceOut)
	}
}

// printSlackHistogram renders the nonzero buckets of a slack histogram as
// ASCII bars, one row per occupied latency bucket.
func printSlackHistogram(h telemetry.Hist) {
	if h.Count == 0 {
		fmt.Println("  (no deadline-bearing requests)")
		return
	}
	var peak uint64
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		bar := make([]byte, (40*c+peak-1)/peak)
		for j := range bar {
			bar[j] = '#'
		}
		fmt.Printf("  ≤%9.0fµs %6d %s\n", telemetry.BucketBound(i), c, bar)
	}
}
