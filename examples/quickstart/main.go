// Quickstart: decode one 4-user QPSK uplink channel use with QuAMax.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"quamax"
)

func main() {
	// A decoder with the paper's defaults: simulated DW2Q chip, improved
	// coupler range, |J_F| = 4, Ta = Tp = 1 µs, 100 anneals per run.
	dec, err := quamax.NewDecoder(quamax.Options{})
	if err != nil {
		log.Fatal(err)
	}
	src := quamax.NewSource(42)

	// Four single-antenna users transmit QPSK to a 4-antenna AP at 20 dB.
	inst, err := quamax.NewInstance(src, quamax.InstanceConfig{
		Mod: quamax.QPSK, Users: 4, Antennas: 4, SNRdB: 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	out, err := dec.DecodeInstance(inst, src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("transmitted bits: %v\n", inst.TxBits)
	fmt.Printf("decoded bits:     %v\n", out.Bits)
	fmt.Printf("bit errors:       %d\n", inst.BitErrors(out.Bits))
	fmt.Printf("ML metric ‖y−Hv̂‖²: %.6f\n", out.Energy)
	fmt.Printf("per-anneal wall time: %.1f µs (Ta+Tp)\n", out.WallMicrosPerAnneal)

	// The solution distribution drives the paper's Eq. 9 / TTB analysis.
	d := out.Distribution
	fmt.Printf("distinct solutions over %d anneals: %d\n", d.Total, len(d.Solutions))
	fmt.Printf("expected BER after 1 anneal:  %.2e\n", d.ExpectedBER(1))
	fmt.Printf("expected BER after 10 anneals: %.2e\n", d.ExpectedBER(10))
	fmt.Printf("TTB(1e-6): %.1f µs\n", d.TTB(1e-6, out.WallMicrosPerAnneal, out.Pf))
}
