// Coded: the full soft-output receive chain end to end — interleave →
// convolutional encode → Gray modulate → anneal → ensemble LLRs → soft
// Viterbi — on 16-user 16-QAM Rayleigh uplinks, measuring the coded
// frame-error-rate gain of soft-decision decoding over hard decisions at an
// EQUAL anneal budget (equal Na). The soft path costs nothing extra at the
// annealer: the LLRs are computed from the same Na reads the hard decision
// already scored (internal/softout), so any coded-FER gain is free detector
// information the hard chain was throwing away.
//
// Two annealer profiles run side by side:
//
//   - next-gen: the paper's §8 outlook made concrete — a next-generation
//     chip with full logical connectivity (no minor-embedding; Pegasus-era
//     topologies shrink the paper's ⌈N/4⌉+1 chains toward direct coupling,
//     see experiments.TableFuture) and 10× tighter analog control
//     (ICE/10), annealed on a longer, colder schedule. On this profile the
//     detector reaches the raw-BER regime where the (133,171)₈ code bites,
//     and soft decisions strictly beat hard ones at every SNR point.
//
//   - DW2Q: the paper's own chip model, via the production compiled-soft
//     path (Decoder.Compile + DecodeCompiledSoft). 16-user 16-QAM reduces
//     to N = 64 spins with 17-qubit chains — past the chip's measured
//     16-QAM edge of 9 users (§5.3, Figs. 9–11) — so its raw BER is far
//     above the code's threshold and BOTH chains fail every frame. The row
//     is reported for honesty: it is exactly why the paper leans on FEC
//     (§5.3.3) and why soft-output support matters for the next hardware
//     generation (Kasi et al., arXiv:2109.01465).
//
//     go run ./examples/coded
//     go run ./examples/coded -frames 24 -snrs 15,16,17,18,20
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"quamax"
	"quamax/internal/anneal"
	"quamax/internal/channel"
	"quamax/internal/coding"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/qubo"
	"quamax/internal/reduction"
	"quamax/internal/rng"
	"quamax/internal/softout"
)

const (
	users    = 16
	dataBits = 122 // +6 tail bits → 128 trellis steps → 256 coded bits
)

// frameStats accumulates one profile's chain results at one SNR.
type frameStats struct {
	frames, hardFE, softFE int
	rawErrs, rawBits       int
	saturated, llrCount    int
}

func (s frameStats) row(profile string, snr float64) string {
	return fmt.Sprintf("%-8s %5.0f  %8.4f  %6.3f  %6.3f  %7.0f%%",
		profile, snr,
		float64(s.rawErrs)/float64(s.rawBits),
		float64(s.hardFE)/float64(s.frames),
		float64(s.softFE)/float64(s.frames),
		100*float64(s.saturated)/float64(s.llrCount))
}

func main() {
	var (
		frames  = flag.Int("frames", 12, "coded frames per SNR point")
		na      = flag.Int("na", 100, "anneals per channel use (equal for hard and soft)")
		snrList = flag.String("snrs", "16,18,20", "comma-separated SNR points (dB) for the next-gen profile")
		dw2qSNR = flag.Float64("dw2q-snr", 20, "SNR of the DW2Q context row (<0 disables)")
		seed    = flag.Int64("seed", 2026, "random seed")
	)
	flag.Parse()

	mod := modulation.QAM16
	code := coding.NewWiFiCode()
	il := coding.BlockInterleaver{Rows: 16, Cols: 16} // 256 coded bits
	bitsPerUse := users * mod.BitsPerSymbol()         // 64 = one N=64 Ising problem
	uses := il.Size() / bitsPerUse

	fmt.Printf("coded chain: %d data bits → rate-1/2 K=7 → %d coded bits → %d×%d interleaver → %d channel uses of %d-user %v\n",
		dataBits, il.Size(), il.Rows, il.Cols, uses, users, mod)
	fmt.Printf("equal anneal budget: Na = %d reads per channel use for BOTH chains; LLRs reuse the hard decision's energies\n\n", *na)
	fmt.Printf("%-8s %5s  %8s  %6s  %6s  %8s\n", "profile", "SNR", "raw BER", "hFER", "sFER", "LLR sat")

	params := anneal.Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: *na}
	started := time.Now()

	for _, snrStr := range strings.Split(*snrList, ",") {
		snr, err := strconv.ParseFloat(strings.TrimSpace(snrStr), 64)
		if err != nil {
			log.Fatalf("bad -snrs entry %q: %v", snrStr, err)
		}
		st := runNextGen(mod, code, il, *frames, snr, params, rng.New(*seed))
		fmt.Println(st.row("next-gen", snr))
		if st.softFE >= st.hardFE {
			fmt.Printf("  (soft FER %d/%d did not strictly beat hard %d/%d at this point)\n",
				st.softFE, st.frames, st.hardFE, st.frames)
		}
	}
	if *dw2qSNR >= 0 {
		st := runDW2Q(mod, code, il, *frames, *dw2qSNR, params, rng.New(*seed))
		fmt.Println(st.row("DW2Q", *dw2qSNR))
	}

	fmt.Printf("\n%d frames/point in %v\n", *frames, time.Since(started).Round(time.Millisecond))
	fmt.Println("\nhFER/sFER: coded frame error rate with hard-decision / soft-decision Viterbi at equal Na.")
	fmt.Println("The next-gen rows are the acceptance demonstration: soft strictly below hard at every SNR.")
	fmt.Println("The DW2Q row shows the paper's chip past its 16-QAM edge (9 users): raw BER above the")
	fmt.Println("code threshold, both chains fail — the §5.3.3 motivation for better soft-capable hardware.")
}

// encodeFrame draws one frame's data, encodes, interleaves, and returns
// (data, interleaved coded bits).
func encodeFrame(code *coding.Convolutional, il coding.BlockInterleaver, src *rng.Source) ([]byte, []byte) {
	data := src.Bits(dataBits)
	inter, err := il.Interleave(code.Encode(data))
	if err != nil {
		log.Fatal(err)
	}
	return data, inter
}

// scoreFrame deinterleaves both streams, runs both Viterbi paths, and folds
// the result into st.
func scoreFrame(code *coding.Convolutional, il coding.BlockInterleaver, st *frameStats, data, rxHard []byte, rxLLR []float64) {
	deHard, err := il.Deinterleave(rxHard)
	if err != nil {
		log.Fatal(err)
	}
	deLLR, err := il.DeinterleaveLLRs(rxLLR)
	if err != nil {
		log.Fatal(err)
	}
	hardDec, err := code.Decode(deHard)
	if err != nil {
		log.Fatal(err)
	}
	softDec, err := code.DecodeSoft(deLLR)
	if err != nil {
		log.Fatal(err)
	}
	he, se := 0, 0
	for i := range data {
		if hardDec[i] != data[i] {
			he++
		}
		if softDec[i] != data[i] {
			se++
		}
	}
	st.frames++
	if he > 0 {
		st.hardFE++
	}
	if se > 0 {
		st.softFE++
	}
}

// nextGenMachine is the §8 forward-looking annealer model: the calibrated
// simulator with 10× tighter intrinsic control errors and a longer, colder
// schedule. Full connectivity is expressed by programming the logical
// problem directly (qubo.SparseFromIsing) instead of minor-embedding it.
func nextGenMachine() *anneal.Machine {
	m := anneal.NewMachine()
	m.BetaFinal = 16
	m.SweepsPerMicrosecond *= 8
	m.ICE.HMean *= 0.1
	m.ICE.HStd *= 0.1
	m.ICE.JMean *= 0.1
	m.ICE.JStd *= 0.1
	return m
}

// runNextGen measures one SNR point on the next-generation profile: compile
// the channel once per frame (reduction.CompileChannel), rewrite only the
// biases per channel use, anneal the logical program directly, and feed the
// read ensemble to internal/softout.
func runNextGen(mod modulation.Modulation, code *coding.Convolutional, il coding.BlockInterleaver, frames int, snr float64, params anneal.Params, src *rng.Source) frameStats {
	m := nextGenMachine()
	bitsPerUse := users * mod.BitsPerSymbol()
	var st frameStats
	for f := 0; f < frames; f++ {
		data, inter := encodeFrame(code, il, src)
		h := channel.Rayleigh{}.Generate(src, users, users)
		prog := reduction.CompileChannel(mod, h)
		rxHard := make([]byte, 0, len(inter))
		rxLLR := make([]float64, 0, len(inter))
		for u := 0; u*bitsPerUse < len(inter); u++ {
			txBits := inter[u*bitsPerUse : (u+1)*bitsPerUse]
			in, err := mimo.FromParts(src, mimo.Config{Mod: mod, Nt: users, Nr: users,
				Channel: channel.Rayleigh{}, SNRdB: snr}, h, txBits)
			if err != nil {
				log.Fatal(err)
			}
			logical := prog.Biases(in.Y)
			samples, err := m.Run(qubo.SparseFromIsing(logical), params, true, src)
			if err != nil {
				log.Fatal(err)
			}
			ens := softout.NewEnsemble(logical.N, 256)
			bestE := 0.0
			var bestBits []byte
			for _, s := range samples {
				e := logical.Energy(s.Spins)
				qb := qubo.BitsFromSpins(s.Spins)
				ens.Add(mod.PostTranslate(qb), e)
				if bestBits == nil || e < bestE {
					bestE = e
					bestBits = qb
				}
			}
			llrs, sat := ens.LLRs(softout.Spec{NoiseVar: in.NoiseVariance()})
			hardBits := mod.PostTranslate(bestBits)
			st.rawErrs += in.BitErrors(hardBits)
			st.rawBits += len(hardBits)
			st.saturated += sat
			st.llrCount += len(llrs)
			rxHard = append(rxHard, hardBits...)
			rxLLR = append(rxLLR, llrs...)
		}
		scoreFrame(code, il, &st, data, rxHard, rxLLR)
	}
	return st
}

// runDW2Q measures the context row on the paper's chip model through the
// production pipeline: Decoder.Compile once per frame, DecodeCompiledSoft
// per channel use, chain strength scaled to the compiled channel's
// coefficient range (the 16-QAM fit of JF = 12 was measured at Nt ≤ 9;
// a 16-user channel's couplings are an order of magnitude larger, so an
// unscaled chain shatters).
func runDW2Q(mod modulation.Modulation, code *coding.Convolutional, il coding.BlockInterleaver, frames int, snr float64, params anneal.Params, src *rng.Source) frameStats {
	dec, err := quamax.NewDecoder(quamax.Options{Params: params})
	if err != nil {
		log.Fatal(err)
	}
	bitsPerUse := users * mod.BitsPerSymbol()
	var st frameStats
	for f := 0; f < frames; f++ {
		data, inter := encodeFrame(code, il, src)
		h := channel.Rayleigh{}.Generate(src, users, users)
		cc, err := dec.Compile(mod, h)
		if err != nil {
			log.Fatal(err)
		}
		jf := 0.5 * reduction.CompileChannel(mod, h).CouplingTemplate().MaxAbsCoefficient()
		rxHard := make([]byte, 0, len(inter))
		rxLLR := make([]float64, 0, len(inter))
		for u := 0; u*bitsPerUse < len(inter); u++ {
			txBits := inter[u*bitsPerUse : (u+1)*bitsPerUse]
			in, err := mimo.FromParts(src, mimo.Config{Mod: mod, Nt: users, Nr: users,
				Channel: channel.Rayleigh{}, SNRdB: snr}, h, txBits)
			if err != nil {
				log.Fatal(err)
			}
			out, err := dec.DecodeCompiledSoftWithParams(cc, in.Y,
				softout.Spec{NoiseVar: in.NoiseVariance(), MaxCandidates: 256}, params, jf, src)
			if err != nil {
				log.Fatal(err)
			}
			st.rawErrs += in.BitErrors(out.Bits)
			st.rawBits += len(out.Bits)
			st.saturated += out.LLRSaturated
			st.llrCount += len(out.LLRs)
			rxHard = append(rxHard, out.Bits...)
			rxLLR = append(rxLLR, out.LLRs...)
		}
		scoreFrame(code, il, &st, data, rxHard, rxLLR)
	}
	return st
}
