// Multiuser: the paper's motivating comparison on one machine — a 12-user
// BPSK uplink where the channel is square (Nt = Nr), swept across SNR, with
// QuAMax, zero-forcing, MMSE and the sphere decoder side by side. This is
// the Fig. 14 phenomenon in miniature: linear filters hit a BER floor when
// the channel is poorly conditioned, ML-grade detection does not.
//
//	go run ./examples/multiuser
package main

import (
	"fmt"
	"log"

	"quamax"
	"quamax/internal/detector"
)

const (
	users     = 12
	instances = 40
)

func main() {
	dec, err := quamax.NewDecoder(quamax.Options{})
	if err != nil {
		log.Fatal(err)
	}
	src := quamax.NewSource(7)

	fmt.Printf("%d-user BPSK, Nt=Nr, %d channel uses per SNR\n\n", users, instances)
	fmt.Printf("%8s  %12s  %12s  %12s  %12s\n", "SNR(dB)", "QuAMax BER", "Sphere BER", "ZF BER", "MMSE BER")

	for _, snr := range []float64{6, 8, 10, 12, 14} {
		var qmErr, sphErr, zfErr, mmseErr, totalBits int
		for i := 0; i < instances; i++ {
			inst, err := quamax.NewInstance(src, quamax.InstanceConfig{
				Mod: quamax.BPSK, Users: users, Antennas: users, SNRdB: snr,
				Channel: quamax.RayleighChannel(),
			})
			if err != nil {
				log.Fatal(err)
			}
			totalBits += len(inst.TxBits)

			out, err := dec.DecodeInstance(inst, src)
			if err != nil {
				log.Fatal(err)
			}
			qmErr += inst.BitErrors(out.Bits)

			if sp, err := detector.SphereDecode(inst.Mod, inst.H, inst.Y, detector.SphereOptions{}); err == nil {
				sphErr += inst.BitErrors(sp.Bits)
			}
			if zf, err := detector.ZeroForcing(inst.Mod, inst.H, inst.Y); err == nil {
				zfErr += inst.BitErrors(zf.Bits)
			} else {
				zfErr += len(inst.TxBits) // singular channel: ZF fails outright
			}
			if mm, err := detector.MMSE(inst.Mod, inst.H, inst.Y, inst.NoiseVariance()); err == nil {
				mmseErr += inst.BitErrors(mm.Bits)
			}
		}
		ber := func(e int) float64 { return float64(e) / float64(totalBits) }
		fmt.Printf("%8.0f  %12.2e  %12.2e  %12.2e  %12.2e\n",
			snr, ber(qmErr), ber(sphErr), ber(zfErr), ber(mmseErr))
	}
	fmt.Println("\nexpected: QuAMax tracks the sphere decoder (ML); ZF/MMSE trail at every SNR")
}
