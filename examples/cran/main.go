// C-RAN: the paper's deployment architecture end to end on one machine. A
// data-center process exposes a QPU *pool* — two simulated annealers plus a
// classical-SA fallback behind a deadline-aware scheduler with a TTS-driven
// anneal-budget planner — over TCP; an access point process estimates uplink
// channels and ships per-subcarrier decode requests over the fronthaul,
// pipelining all subcarriers of an OFDM symbol in flight at once (§1, §5.5,
// §7). Every request carries a target BER, so the planner sizes the read
// budget per subcarrier instead of running the static Na = 100
// configuration; odd subcarriers additionally carry a deadline shorter than
// a single anneal, so the run also shows the hybrid dispatch of
// arXiv:2010.00682: those route to the classical fallback while the rest
// share batched, right-sized annealer runs. The scheduler runs cost-aware
// (sched.Config.CostAware): every backend publishes a capability descriptor
// with a $/solve and J/solve cost model, easy QoS classes divert to the
// cheapest solver that still meets their deadline, and the final pool stats
// price each backend's work in micro-USD and millijoules.
//
//	go run ./examples/cran
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"quamax"
	"quamax/internal/backend"
	"quamax/internal/channel"
	"quamax/internal/fronthaul"
	"quamax/internal/linalg"
	"quamax/internal/qos"
	"quamax/internal/rng"
	"quamax/internal/sched"
)

const (
	users       = 8
	apAntennas  = 8
	subcarriers = 16
	snrDB       = 25
	// targetBER is the per-subcarrier QoS target the AP expresses over the
	// fronthaul; the data center's planner turns it into a read budget.
	targetBER = 1e-3
	// tightDeadline is shorter than a single anneal (Ta+Tp = 2 µs), so the
	// planner denies quantum dispatch and requests carrying it must run on
	// the classical SA fallback (and inevitably count as deadline misses —
	// a 1 µs budget is unmeetable by any solver; the fallback still
	// delivers a best-effort decode).
	tightDeadline = 1 * time.Microsecond
)

func main() {
	// --- Data center: a QPU pool behind a fronthaul server. ---
	var pool []backend.Backend
	for _, name := range []string{"qpu0", "qpu1"} {
		qpu, err := backend.NewAnnealer(name, quamax.Options{})
		if err != nil {
			log.Fatal(err)
		}
		pool = append(pool, qpu)
	}
	planner, err := qos.NewPlanner(nil) // built-in TTS coefficients
	if err != nil {
		log.Fatal(err)
	}
	scheduler, err := sched.New(sched.Config{
		Pool:      pool,
		Fallback:  backend.NewClassicalSA("sa", 128, 100),
		Planner:   planner,
		CostAware: true, // price dispatch with the capability descriptors
		Seed:      99,
	})
	if err != nil {
		log.Fatal(err)
	}
	server := fronthaul.NewPoolServer(scheduler)
	server.Logf = log.Printf
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go server.Serve(l)
	fmt.Printf("data center: QPU pool listening on %s\n", l.Addr())

	// --- Access point: connect over the fronthaul. ---
	client, err := fronthaul.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// One OFDM symbol: a frequency-selective channel across subcarriers
	// (4-tap exponential power-delay profile) carrying QPSK from 8 users.
	src := rng.New(123)
	tdl := channel.TappedDelayLine{NumTaps: 4, Decay: 0.6}
	perSC := tdl.GenerateOFDM(src, apAntennas, users, subcarriers)
	sigma := channel.NoiseSigma(quamax.QPSK, users, snrDB)

	type job struct {
		sc       int
		h        *linalg.Mat
		y        []complex128
		txBits   []byte
		deadline time.Duration
	}
	jobs := make([]job, subcarriers)
	for sc := 0; sc < subcarriers; sc++ {
		bits := src.Bits(users * quamax.QPSK.BitsPerSymbol())
		v := quamax.QPSK.MapGrayVector(bits)
		y := channel.AddAWGN(src, linalg.MulVec(perSC[sc], v), sigma)
		jobs[sc] = job{sc: sc, h: perSC[sc], y: y, txBits: bits}
		if sc%2 == 1 {
			// Odd subcarriers carry a deadline no anneal can fit: the planner
			// denies quantum dispatch and they run classically. Even
			// subcarriers carry only the target BER.
			jobs[sc].deadline = tightDeadline
		}
	}

	// Ship all subcarriers concurrently — the fronthaul client pipelines
	// them on one TCP connection.
	var wg sync.WaitGroup
	type result struct {
		sc      int
		errs    int
		compute float64
		backend string
		batched int
	}
	results := make([]result, subcarriers)
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			resp, err := client.DecodeQoS(quamax.QPSK, j.h, j.y, j.deadline, targetBER)
			if err != nil {
				log.Fatalf("subcarrier %d: %v", j.sc, err)
			}
			errs := 0
			for i := range j.txBits {
				if resp.Bits[i] != j.txBits[i] {
					errs++
				}
			}
			results[j.sc] = result{
				sc: j.sc, errs: errs,
				compute: resp.ComputeMicros,
				backend: resp.Backend,
				batched: resp.Batched,
			}
		}(j)
	}
	wg.Wait()

	fmt.Printf("\nAP: decoded %d subcarriers × %d users QPSK at %d dB (target BER %g)\n\n",
		subcarriers, users, snrDB, targetBER)
	fmt.Printf("%4s  %10s  %14s  %8s  %7s\n", "sc", "bit errs", "compute (µs)", "backend", "batched")
	totalErrs, totalBits := 0, 0
	for _, r := range results {
		fmt.Printf("%4d  %10d  %14.1f  %8s  %7d\n", r.sc, r.errs, r.compute, r.backend, r.batched)
		totalErrs += r.errs
		totalBits += users * quamax.QPSK.BitsPerSymbol()
	}
	fmt.Printf("\nsymbol BER: %d/%d = %.2e\n", totalErrs, totalBits,
		float64(totalErrs)/float64(totalBits))

	scheduler.Close()
	fmt.Printf("\ndata center pool stats:\n%s\n", scheduler.Stats())
	fmt.Printf("\ndata center planner stats:\n%s\n", planner.Stats())
}
