// C-RAN: the paper's deployment architecture end to end on one machine. A
// data-center process exposes a QuAMax "QPU pool" over TCP; an access point
// process estimates uplink channels and ships per-subcarrier decode requests
// over the fronthaul, pipelining all subcarriers of an OFDM symbol in
// flight at once (§1, §5.5, §7).
//
//	go run ./examples/cran
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"quamax"
	"quamax/internal/channel"
	"quamax/internal/fronthaul"
	"quamax/internal/linalg"
	"quamax/internal/rng"
)

const (
	users       = 8
	apAntennas  = 8
	subcarriers = 16
	snrDB       = 25
)

func main() {
	// --- Data center: a QuAMax decoder behind a fronthaul server. ---
	dec, err := quamax.NewDecoder(quamax.Options{})
	if err != nil {
		log.Fatal(err)
	}
	server := fronthaul.NewServer(dec, 99)
	server.Logf = log.Printf
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go server.Serve(l)
	fmt.Printf("data center: QPU pool listening on %s\n", l.Addr())

	// --- Access point: connect over the fronthaul. ---
	client, err := fronthaul.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// One OFDM symbol: a frequency-selective channel across subcarriers
	// (4-tap exponential power-delay profile) carrying QPSK from 8 users.
	src := rng.New(123)
	tdl := channel.TappedDelayLine{NumTaps: 4, Decay: 0.6}
	perSC := tdl.GenerateOFDM(src, apAntennas, users, subcarriers)
	sigma := channel.NoiseSigma(quamax.QPSK, users, snrDB)

	type job struct {
		sc     int
		h      *linalg.Mat
		y      []complex128
		txBits []byte
	}
	jobs := make([]job, subcarriers)
	for sc := 0; sc < subcarriers; sc++ {
		bits := src.Bits(users * quamax.QPSK.BitsPerSymbol())
		v := quamax.QPSK.MapGrayVector(bits)
		y := channel.AddAWGN(src, linalg.MulVec(perSC[sc], v), sigma)
		jobs[sc] = job{sc: sc, h: perSC[sc], y: y, txBits: bits}
	}

	// Ship all subcarriers concurrently — the fronthaul client pipelines
	// them on one TCP connection.
	var wg sync.WaitGroup
	type result struct {
		sc      int
		errs    int
		compute float64
	}
	results := make([]result, subcarriers)
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			resp, err := client.Decode(quamax.QPSK, j.h, j.y)
			if err != nil {
				log.Fatalf("subcarrier %d: %v", j.sc, err)
			}
			errs := 0
			for i := range j.txBits {
				if resp.Bits[i] != j.txBits[i] {
					errs++
				}
			}
			results[j.sc] = result{sc: j.sc, errs: errs, compute: resp.ComputeMicros}
		}(j)
	}
	wg.Wait()

	fmt.Printf("\nAP: decoded %d subcarriers × %d users QPSK at %d dB\n\n", subcarriers, users, snrDB)
	fmt.Printf("%4s  %10s  %14s\n", "sc", "bit errs", "QPU time (µs)")
	totalErrs, totalBits := 0, 0
	for _, r := range results {
		fmt.Printf("%4d  %10d  %14.1f\n", r.sc, r.errs, r.compute)
		totalErrs += r.errs
		totalBits += users * quamax.QPSK.BitsPerSymbol()
	}
	fmt.Printf("\nsymbol BER: %d/%d = %.2e\n", totalErrs, totalBits,
		float64(totalErrs)/float64(totalBits))
}
