// Coherence: the protocol-v4 fronthaul flow end to end. An access point
// estimates one uplink channel per coherence window (paper footnote 2) and
// decodes MANY OFDM symbols through it, so instead of shipping H with every
// received vector (the v3 flow), the AP registers the channel once
// (Client.RegisterChannel) and then streams y-only decode-by-handle frames
// (Client.DecodeWithChannel). The data center compiles the channel once —
// Ising couplings, clique embedding, prepared physical program — batches
// same-window symbols into shared annealer runs, and rewrites only the
// per-symbol biases; the pool's channel-cache stats show the amortization.
//
//	go run ./examples/coherence
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"quamax"
	"quamax/internal/backend"
	"quamax/internal/channel"
	"quamax/internal/fronthaul"
	"quamax/internal/linalg"
	"quamax/internal/rng"
	"quamax/internal/sched"
)

const (
	users   = 4
	windows = 3  // coherence windows (one estimated H each)
	symbols = 14 // OFDM symbols per window (one LTE slot)
)

func main() {
	mod := quamax.QPSK
	src := rng.New(42)

	// Data center: a two-QPU pool behind the fronthaul TCP protocol.
	var pool []backend.Backend
	for _, name := range []string{"qpu0", "qpu1"} {
		qpu, err := backend.NewAnnealer(name, quamax.Options{})
		if err != nil {
			log.Fatal(err)
		}
		pool = append(pool, qpu)
	}
	scheduler, err := sched.New(sched.Config{Pool: pool, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	server := fronthaul.NewPoolServer(scheduler)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go server.Serve(l)
	fmt.Printf("data center listening on %s (fronthaul protocol v%d)\n",
		l.Addr(), fronthaul.ProtocolVersion)

	// Access point side.
	client, err := fronthaul.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	started := time.Now()
	totalBits, totalErrs := 0, 0
	for w := 0; w < windows; w++ {
		// One channel estimate per coherence window...
		h := channel.RandomPhase{}.Generate(src, users, users)
		rc, err := client.RegisterChannel(mod, h)
		if err != nil {
			log.Fatal(err)
		}
		// ...and a whole window of symbols decoded by handle, pipelined so
		// the pool can gather them into shared runs over the compiled
		// channel.
		type sym struct {
			bits []byte
			resp *fronthaul.DecodeResponse
			err  error
		}
		syms := make([]sym, symbols)
		var wg sync.WaitGroup
		for s := 0; s < symbols; s++ {
			bits := src.Bits(users * mod.BitsPerSymbol())
			y := channel.AddAWGN(src, linalg.MulVec(h, mod.MapGrayVector(bits)), 0.02)
			syms[s].bits = bits
			wg.Add(1)
			go func(s int, y []complex128) {
				defer wg.Done()
				syms[s].resp, syms[s].err = client.DecodeWithChannel(rc, y, 0, 0)
			}(s, y)
		}
		wg.Wait()

		errs, batched := 0, 0
		for s := range syms {
			if syms[s].err != nil {
				log.Fatalf("window %d symbol %d: %v", w, s, syms[s].err)
			}
			for i, b := range syms[s].bits {
				totalBits++
				if syms[s].resp.Bits[i] != b {
					errs++
				}
			}
			if syms[s].resp.Batched > batched {
				batched = syms[s].resp.Batched
			}
		}
		totalErrs += errs
		fmt.Printf("window %d: %d symbols decoded, %d bit errors, largest shared run %d symbols\n",
			w, symbols, errs, batched)
	}
	elapsed := time.Since(started)
	fmt.Printf("\n%d symbols in %v (%.0f symbols/s), BER %g\n",
		windows*symbols, elapsed.Round(time.Millisecond),
		float64(windows*symbols)/elapsed.Seconds(),
		float64(totalErrs)/float64(totalBits))

	l.Close()
	scheduler.Close()
	st := scheduler.Stats()
	fmt.Printf("\npool stats:\n%s\n", st)
	fmt.Printf("\ncompile amortization: %d channel compiles served %d decodes (%.0f%% cache hit)\n",
		st.ChannelCache.Misses, st.Completed, 100*st.ChannelCache.HitRate())
}
