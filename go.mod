module quamax

go 1.24
