// Benchmark harness: one benchmark per paper table/figure (quick-scale
// presets; run cmd/quamax for full scale), plus component micro-benchmarks.
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark regenerates the table and reports its row count
// as a custom metric; run with -v to see the rendered tables.
package quamax_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"quamax"
	"quamax/internal/anneal"
	"quamax/internal/backend"
	"quamax/internal/channel"
	"quamax/internal/chimera"
	"quamax/internal/coding"
	"quamax/internal/core"
	"quamax/internal/detector"
	"quamax/internal/embedding"
	"quamax/internal/experiments"
	"quamax/internal/health"
	"quamax/internal/linalg"
	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/precoding"
	"quamax/internal/qos"
	"quamax/internal/qubo"
	"quamax/internal/reduction"
	"quamax/internal/rng"
	"quamax/internal/router"
	"quamax/internal/sched"
	"quamax/internal/softout"
	"quamax/internal/telemetry"
	"quamax/internal/trace"
)

// sharedEnv reuses embeddings/decoders across experiment benchmarks.
var (
	envOnce sync.Once
	env     *experiments.Env
)

func sharedEnv() *experiments.Env {
	envOnce.Do(func() { env = experiments.NewEnv() })
	return env
}

func runExperiment(b *testing.B, fn func(*experiments.Env) (*experiments.Table, error)) {
	b.Helper()
	var rows int
	for i := 0; i < b.N; i++ {
		tab, err := fn(sharedEnv())
		if err != nil {
			b.Fatal(err)
		}
		rows = len(tab.Rows)
		if rows == 0 {
			b.Fatal("experiment produced no rows")
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkTable1(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.Table1(experiments.Table1Quick())
	})
}

func BenchmarkTable2(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.Table2()
	})
}

func BenchmarkFig4(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.Fig4(e, experiments.Fig4Quick())
	})
}

func BenchmarkFig5(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.Fig5(e, experiments.Fig5Quick())
	})
}

func BenchmarkFig6(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.Fig6(e, experiments.Fig6Quick())
	})
}

func BenchmarkFig7(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.Fig7(e, experiments.Fig7Quick())
	})
}

func BenchmarkFig8(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.Fig8(e, experiments.Fig8Quick())
	})
}

func BenchmarkFig9(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.Fig9(e, experiments.Fig9Quick())
	})
}

func BenchmarkFig10(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.Fig10(e, experiments.Fig10Quick())
	})
}

func BenchmarkFig11(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.Fig11(e, experiments.Fig11Quick())
	})
}

func BenchmarkFig12(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.Fig12(e, experiments.Fig12Quick())
	})
}

func BenchmarkFig13(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.Fig13(e, experiments.Fig13Quick())
	})
}

func BenchmarkFig14(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.Fig14(e, experiments.Fig14Quick())
	})
}

func BenchmarkFig15(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.Fig15(e, experiments.Fig15Quick())
	})
}

// --- Component micro-benchmarks -------------------------------------------

func benchInstance(b *testing.B, mod modulation.Modulation, nt int, snr float64) *mimo.Instance {
	b.Helper()
	in, err := mimo.Generate(rng.New(1), mimo.Config{
		Mod: mod, Nt: nt, Nr: nt, Channel: channel.RandomPhase{}, SNRdB: snr,
	})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkReduceToIsing measures the closed-form ML→Ising reduction the
// paper calls "computationally insignificant" (48-user BPSK).
func BenchmarkReduceToIsing(b *testing.B) {
	in := benchInstance(b, modulation.BPSK, 48, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reduction.ReduceToIsing(in.Mod, in.H, in.Y)
	}
}

// BenchmarkReduceToQUBO measures the norm-expansion construction (oracle path).
func BenchmarkReduceToQUBO(b *testing.B) {
	in := benchInstance(b, modulation.QPSK, 18, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reduction.ReduceToQUBO(in.Mod, in.H, in.Y)
	}
}

// BenchmarkEmbed measures clique-embedding construction on the DW2Q model.
func BenchmarkEmbed(b *testing.B) {
	g := chimera.DW2Q()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := embedding.Embed(g, 48); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmbedIsing measures compiling a 48-spin problem onto chains.
func BenchmarkEmbedIsing(b *testing.B) {
	g := chimera.DW2Q()
	emb, err := embedding.Embed(g, 48)
	if err != nil {
		b.Fatal(err)
	}
	in := benchInstance(b, modulation.BPSK, 48, 20)
	logical := reduction.ReduceToIsing(in.Mod, in.H, in.Y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emb.EmbedIsing(logical, 4, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnneal48BPSK measures one 100-anneal run of the paper's headline
// 48-user BPSK problem (624 physical qubits) through both sweep engines:
// mode=scalar is the device simulator (Machine.Run, the QA-fidelity path with
// ICE noise, per-anneal rescale, and the calibrated ramp+pause schedule),
// mode=multispin is the bit-parallel engine (anneal.RunMultiSpin) on the
// device-normalized program under a tuned pure-ramp schedule. The comparison
// is iso-quality (TTS-style), not iso-schedule: the mid-anneal pause is a
// quantum-annealing physics aid that buys classical sweeps nothing
// (measured: +64 pause sweeps move gsrate by +0.03), so the classical
// engine's row runs the schedule that reaches equal-or-better solution
// quality in the fewest sweeps (β 0.5→12 over 40 sweeps; the scalar machine
// runs its calibrated 64+64). Each mode reports gsrate — the fraction of
// anneals landing within 2% of the best-known energy for this instance (the
// exact 624-qubit ground state is re-found too rarely by either engine to
// discriminate) — so the ns/op ratio is read at equal-or-better quality.
// tools/benchjson -check enforces multispin ≥5× scalar ns/op with gsrate no
// worse than scalar's (BENCH_PR7.json); the differential harness in
// internal/anneal proves the packed sweep bit-exact against its scalar twin.
func BenchmarkAnneal48BPSK(b *testing.B) {
	g := chimera.DW2Q()
	emb, err := embedding.Embed(g, 48)
	if err != nil {
		b.Fatal(err)
	}
	in := benchInstance(b, modulation.BPSK, 48, 20)
	logical := reduction.ReduceToIsing(in.Mod, in.H, in.Y)
	ep, err := emb.EmbedIsing(logical, 4, true)
	if err != nil {
		b.Fatal(err)
	}
	m := anneal.NewMachine()
	params := anneal.Params{AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35, NumAnneals: 100}

	// Both modes score energies on the device-normalized program (the machine
	// divides by the same auto-scale internally before sweeping), so energies
	// and the success threshold are directly comparable.
	norm := ep.Phys.Clone()
	scale := m.Scale(ep.Phys, true)
	for i := range norm.H {
		norm.H[i] /= scale
	}
	for i := range norm.Edges {
		norm.Edges[i].W /= scale
	}
	norm.Offset /= scale
	msSched := anneal.MSSchedule{BetaInitial: 0.5, BetaFinal: 12, Sweeps: 40}

	// Best-known energy from untimed warmup runs (a long multi-spin sweep
	// plus one run of each benchmarked mode); gsrate counts anneals within
	// 2% of it.
	ref := math.Inf(1)
	warm, err := m.Run(ep.Phys, params, true, rng.New(11))
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range warm {
		if e := norm.Energy(s.Spins); e < ref {
			ref = e
		}
	}
	deep := anneal.MSSchedule{BetaInitial: 0.3, BetaFinal: 8, Sweeps: 128}
	for _, ws := range []anneal.MSSchedule{deep, msSched} {
		_, warmE, err := anneal.RunMultiSpin(norm, ws, 256, 1, rng.New(11))
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range warmE {
			if e < ref {
				ref = e
			}
		}
	}
	thr := ref + 0.02*math.Abs(ref)

	b.Run("mode=scalar", func(b *testing.B) {
		src := rng.New(2)
		hits, total := 0, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			samples, err := m.Run(ep.Phys, params, true, src)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			for _, s := range samples {
				if norm.Energy(s.Spins) <= thr {
					hits++
				}
			}
			total += len(samples)
			b.StartTimer()
		}
		b.ReportMetric(float64(hits)/float64(total), "gsrate")
	})
	b.Run("mode=multispin", func(b *testing.B) {
		src := rng.New(2)
		hits, total := 0, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, energies, err := anneal.RunMultiSpin(norm, msSched, params.NumAnneals, 1, src)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range energies {
				if e <= thr {
					hits++
				}
			}
			total += len(energies)
		}
		b.ReportMetric(float64(hits)/float64(total), "gsrate")
	})
}

// BenchmarkDecodeEndToEnd measures the full QuAMax pipeline per channel use
// (14-user QPSK at 20 dB, the paper's Fig. 13 fixed-user config).
func BenchmarkDecodeEndToEnd(b *testing.B) {
	dec, err := quamax.NewDecoder(quamax.Options{})
	if err != nil {
		b.Fatal(err)
	}
	in := benchInstance(b, modulation.QPSK, 14, 20)
	src := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.DecodeInstance(in, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSphereDecoder measures the classical ML baseline at the Table 1
// borderline size (21-user BPSK, 13 dB).
func BenchmarkSphereDecoder(b *testing.B) {
	in := benchInstance(b, modulation.BPSK, 21, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := detector.SphereDecode(in.Mod, in.H, in.Y, detector.SphereOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZeroForcing measures the linear baseline at 48 users.
func BenchmarkZeroForcing(b *testing.B) {
	in := benchInstance(b, modulation.BPSK, 48, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := detector.ZeroForcing(in.Mod, in.H, in.Y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQR measures the complex Householder QR on a 48×48 channel.
func BenchmarkQR(b *testing.B) {
	h := channel.Rayleigh{}.Generate(rng.New(4), 48, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.QRDecompose(h)
	}
}

// BenchmarkExpectedBER measures the Eq. 9 evaluation over a large rank
// distribution.
func BenchmarkExpectedBER(b *testing.B) {
	src := rng.New(5)
	d := &metrics.Distribution{N: 48}
	for r := 0; r < 2000; r++ {
		cnt := 1 + src.Intn(50)
		d.Total += cnt
		d.Solutions = append(d.Solutions, metrics.RankedSolution{
			Energy: float64(r), Count: cnt, BitErrors: src.Intn(10),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := d.ExpectedBER(50); math.IsNaN(v) {
			b.Fatal("NaN")
		}
	}
}

// BenchmarkBruteForce20 measures the exhaustive Ising oracle at 20 spins.
func BenchmarkBruteForce20(b *testing.B) {
	src := rng.New(6)
	p := qubo.NewIsing(20)
	for i := 0; i < p.N; i++ {
		p.H[i] = src.Gauss(0, 1)
		for j := i + 1; j < p.N; j++ {
			p.SetJ(i, j, src.Gauss(0, 1))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qubo.BruteForceIsing(p)
	}
}

// BenchmarkFuture regenerates the §8 next-generation-chip projection table.
func BenchmarkFuture(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.TableFuture()
	})
}

// BenchmarkReverse regenerates the reverse-annealing ablation (§8 [68]).
func BenchmarkReverse(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.AblationReverse(e, experiments.ReverseQuick())
	})
}

// BenchmarkCoded regenerates the simulated coded-FER extension table.
func BenchmarkCoded(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.Coded(e, experiments.CodedQuick())
	})
}

// BenchmarkSAComparison regenerates the QA-vs-classical-SA table (§6).
func BenchmarkSAComparison(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.SAComparison(e, experiments.SAQuick())
	})
}

// BenchmarkClassicalSA measures the logical-space SA baseline per decode.
func BenchmarkClassicalSA(b *testing.B) {
	in := benchInstance(b, modulation.BPSK, 36, 20)
	sa := detector.NewClassicalSA(128, 100)
	src := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sa.Decode(in.Mod, in.H, in.Y, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduler measures QPU-pool throughput end to end (no fronthaul):
// 32 concurrent QPSK decode requests per iteration through pools of 1, 4 and
// 16 simulated annealers, with cross-request embedding-slot batching on and
// off. decodes/s is the figure future scaling PRs compare against.
func BenchmarkScheduler(b *testing.B) {
	const requests = 32
	probs := make([]*backend.Problem, requests)
	for i := range probs {
		in := benchInstance(b, modulation.QPSK, 2, 20)
		probs[i] = &backend.Problem{Mod: in.Mod, H: in.H, Y: in.Y}
	}
	for _, workers := range []int{1, 4, 16} {
		for _, batch := range []bool{true, false} {
			b.Run(fmt.Sprintf("pool=%d/batch=%t", workers, batch), func(b *testing.B) {
				pool := make([]backend.Backend, workers)
				for i := range pool {
					qpu, err := backend.NewAnnealer(fmt.Sprintf("qpu%d", i), quamax.Options{
						Graph: chimera.New(6),
						Params: anneal.Params{
							AnnealTimeMicros: 1, PauseTimeMicros: 1,
							PausePosition: 0.35, NumAnneals: 20,
						},
					})
					if err != nil {
						b.Fatal(err)
					}
					pool[i] = qpu
				}
				s, err := sched.New(sched.Config{Pool: pool, DisableBatch: !batch, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					for _, p := range probs {
						wg.Add(1)
						go func(p *backend.Problem) {
							defer wg.Done()
							if _, err := s.Dispatch(ctx, p, 0); err != nil {
								b.Error(err)
							}
						}(p)
					}
					wg.Wait()
				}
				b.StopTimer()
				b.ReportMetric(float64(requests*b.N)/b.Elapsed().Seconds(), "decodes/s")
			})
		}
	}
}

// shardedDeviceMicros is the simulated QPU occupancy per decode in
// BenchmarkShardedServe: the wall time the annealer chip is busy while the
// host CPU idles (a real QPU anneals off-host; the serving tier's job is to
// keep N such devices fed). Pacing the benchmark on device wall time rather
// than host CPU makes the shard-scaling measurement deterministic and
// host-core-count independent: decodes/s is bounded by devices × occupancy,
// which is exactly the resource sharding multiplies.
const shardedDeviceMicros = 5000

// qpuDevice wraps the real simulated annealer with device-occupancy pacing.
// Solve runs the full decode pipeline (reduction, compiled-channel cache,
// embedding, anneal simulation — so channel-cache behaviour is the real
// thing) and then holds the device busy for the balance of the occupancy
// window. The embedded Annealer keeps Describe (its capability descriptor)
// and ChannelCacheStats visible to the scheduler.
type qpuDevice struct {
	*backend.Annealer
}

func (d *qpuDevice) Solve(ctx context.Context, p *backend.Problem, src *rng.Source) (*backend.Result, error) {
	res, err := d.Annealer.Solve(ctx, p, src)
	if err != nil {
		return nil, err
	}
	select {
	case <-time.After(shardedDeviceMicros * time.Microsecond):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return res, nil
}

// BenchmarkShardedServe measures the serving value of the front-tier router:
// a fixed offered load — a synthetic multi-user cellular trace
// (trace.GenerateMultiUser: Zipf cell popularity, per-user coherence
// windows) — dispatched through 1, 4 and 8 single-QPU scheduler pools behind
// channel-affinity routing. Every request carries its window's channel
// fingerprint, so consistent hashing pins each coherence window to the shard
// that compiled it: the aggregate compiled-channel hit rate must hold within
// 5 points of the single-pool figure while decodes/s scales with the device
// count (the population is deliberately compact so windows repeat and the
// cache comparison has teeth). Deadlines are generous, so missrate is
// deterministically 0 in every mode — sharding must not invent misses.
// tools/benchjson -check enforces ≥2.5× decodes/s at 4 shards vs 1, no
// missrate regression, and the cache-hit bound (BENCH_PR8.json).
func BenchmarkShardedServe(b *testing.B) {
	mod := modulation.BPSK
	cfg := trace.DefaultMultiUserConfig()
	cfg.Cells = 16
	// A compact population keeps users returning, so coherence windows are
	// revisited and the affinity-preserved cache hit rate is the signal, not
	// cold-miss noise.
	cfg.Users = 256
	cfg.Requests = 768
	cfg.WindowUses = 8
	cfg.Antennas, cfg.CellUsers = 4, 4
	src := rng.New(25)
	tr, err := trace.GenerateMultiUser(src, cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Dataset() shares the window matrices, so normalizing it normalizes the
	// per-request channels in place.
	tr.Dataset().NormalizeAveragePower()
	probs := make([]*backend.Problem, len(tr.Requests))
	for i, r := range tr.Requests {
		bits := src.Bits(cfg.CellUsers * mod.BitsPerSymbol())
		inst, err := mimo.FromParts(src, mimo.Config{
			Mod: mod, Nt: cfg.CellUsers, Nr: cfg.Antennas,
			Channel: channel.Fixed{H: r.H, Label: "cell"}, SNRdB: 28,
		}, r.H, bits)
		if err != nil {
			b.Fatal(err)
		}
		probs[i] = &backend.Problem{
			Mod: inst.Mod, H: inst.H, Y: inst.Y,
			ChannelKey: core.FingerprintChannel(mod, r.H),
		}
	}
	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			var schedulers []*sched.Scheduler
			var shards []router.Shard
			for i := 0; i < n; i++ {
				qpu, err := backend.NewAnnealer(fmt.Sprintf("s%d/qpu0", i), quamax.Options{
					Graph:  chimera.New(6),
					Params: anneal.Params{AnnealTimeMicros: 1, NumAnneals: 10},
					// Roomy enough that no mode ever evicts: the hit-rate
					// comparison must measure affinity, not LRU pressure.
					ChannelCache: 512,
				})
				if err != nil {
					b.Fatal(err)
				}
				s, err := sched.New(sched.Config{
					Pool:         []backend.Backend{&qpuDevice{qpu}},
					DisableBatch: true,
					Seed:         int64(1 + i),
					ShardID:      i,
				})
				if err != nil {
					b.Fatal(err)
				}
				schedulers = append(schedulers, s)
				shards = append(shards, s)
			}
			defer func() {
				for _, s := range schedulers {
					s.Close()
				}
			}()
			rt, err := router.New(router.Config{Shards: shards, Seed: 11})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for _, p := range probs {
					wg.Add(1)
					go func(p *backend.Problem) {
						defer wg.Done()
						if _, err := rt.Dispatch(ctx, p, time.Minute); err != nil {
							b.Error(err)
						}
					}(p)
				}
				wg.Wait()
			}
			b.StopTimer()
			agg := rt.Stats()
			b.ReportMetric(float64(len(probs)*b.N)/b.Elapsed().Seconds(), "decodes/s")
			b.ReportMetric(agg.MissRate(), "missrate")
			b.ReportMetric(agg.ChannelCache.HitRate(), "cachehit")
		})
	}
}

// benchSolveMicros is benchTelemetryBackend's per-solve wall time — a
// deliberately pessimistic stand-in for the cheapest solve the serving
// stack performs (real anneal and classical-SA solves run from hundreds of
// microseconds to tens of milliseconds; the §5.5 replay's solve p50 is
// ~13ms). The telemetry tax is a fixed few microseconds per request, so
// this constant sets what the telemetry gate's "5%" means; it must not be
// lowered without re-deriving maxTelemetryOverhead in tools/benchjson.
const benchSolveMicros = 200

// benchDispatchesPerOp is the telemetry row's inner batch per benchmark
// iteration (half per mode), so even a -benchtime 1x smoke measures
// hundreds of dispatches and the recorded dispatches/s self-averages
// goroutine-handoff jitter.
const benchDispatchesPerOp = 500

// benchTelemetryBackend busy-waits a fixed wall duration per solve. A real
// solver's run-to-run jitter — and CPU-frequency drift between two
// sub-benchmark runs — would swamp a 5% overhead gate; wall-clock pacing
// pins the denominator identically across the telemetry modes by
// construction, so the ratio measures only the tracing tax.
type benchTelemetryBackend struct{}

func (bb *benchTelemetryBackend) Describe() *backend.Capabilities {
	return &backend.Capabilities{
		Name:    "bench",
		Latency: func(p *backend.Problem) float64 { return benchSolveMicros },
	}
}
func (bb *benchTelemetryBackend) Solve(ctx context.Context, p *backend.Problem, src *rng.Source) (*backend.Result, error) {
	start := time.Now()
	for time.Since(start) < benchSolveMicros*time.Microsecond {
	}
	return &backend.Result{Bits: []byte{0}, Backend: "bench", Batched: 1}, nil
}

// BenchmarkSchedulerPlanner measures the serving value of the TTS-driven
// anneal-budget planner: deadline-miss rate under a mixed QPSK/16-QAM load
// at equal offered load, with the planner sizing each request's read budget
// versus the static Na = 100 configuration. 16 concurrent requests per
// iteration (3:1 4-user QPSK to 2-user 16-QAM, 25–30 dB) carry a 1e-3
// target BER and a 20 ms deadline through a four-annealer pool. The fitted
// TTS model prices QPSK at this SNR at a handful of reads and 16-QAM near
// the static budget, so with the planner most runs shrink ~15× and queues
// drain before the deadline; without it every run pays 100 reads. Batching
// is disabled so a run's (simulated) wall time tracks its read budget — the
// quantity the planner controls. The missrate metric (deadline misses per
// completed decode) is the acceptance figure; decodes/s is the throughput
// side of the same effect.
//
// The telemetry row prices the observability plane on the same serving
// path: one planned dispatch at a time through admit → plan → queue → solve
// → respond over a fixed-cost solve, in interleaved blocks with and without
// a telemetry.Recorder attached (off-dispatches/s and on-dispatches/s on
// one row). The on mode adds the trace span, the per-stage histogram
// observations and the deadline-slack bucket. tools/benchjson -check holds
// on within 5% of off (maxTelemetryOverhead): the bar for leaving the plane
// enabled in production.
func BenchmarkSchedulerPlanner(b *testing.B) {
	const (
		requests  = 16
		targetBER = 1e-3
		deadline  = 20 * time.Millisecond
	)
	src := rng.New(42)
	probs := make([]*backend.Problem, requests)
	for i := range probs {
		mod, nt := modulation.QPSK, 4
		if i%4 == 3 {
			mod, nt = modulation.QAM16, 2
		}
		in, err := mimo.Generate(src, mimo.Config{
			Mod: mod, Nt: nt, Nr: nt, Channel: channel.RandomPhase{},
			SNRdB: 25 + 5*src.Float64(),
		})
		if err != nil {
			b.Fatal(err)
		}
		probs[i] = &backend.Problem{Mod: in.Mod, H: in.H, Y: in.Y, TargetBER: targetBER}
	}
	for _, withPlanner := range []bool{false, true} {
		b.Run(fmt.Sprintf("planner=%t", withPlanner), func(b *testing.B) {
			var planner *qos.Planner
			if withPlanner {
				p, err := qos.NewPlanner(nil)
				if err != nil {
					b.Fatal(err)
				}
				planner = p
			}
			pool := make([]backend.Backend, 4)
			for i := range pool {
				qpu, err := backend.NewAnnealer(fmt.Sprintf("qpu%d", i), quamax.Options{
					Graph: chimera.New(6),
					Params: anneal.Params{
						AnnealTimeMicros: 1, PauseTimeMicros: 1,
						PausePosition: 0.35, NumAnneals: 100,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				pool[i] = qpu
			}
			s, err := sched.New(sched.Config{
				Pool: pool, Planner: planner, DisableBatch: true, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for _, p := range probs {
					wg.Add(1)
					go func(p *backend.Problem) {
						defer wg.Done()
						if _, err := s.Dispatch(ctx, p, deadline); err != nil {
							b.Error(err)
						}
					}(p)
				}
				wg.Wait()
			}
			b.StopTimer()
			st := s.Stats()
			b.ReportMetric(st.MissRate(), "missrate")
			b.ReportMetric(float64(requests*b.N)/b.Elapsed().Seconds(), "decodes/s")
		})
	}

	b.Run("telemetry", func(b *testing.B) {
		mk := func(withTelemetry bool) (*sched.Scheduler, error) {
			planner, err := qos.NewPlanner(nil)
			if err != nil {
				return nil, err
			}
			var rec *telemetry.Recorder
			if withTelemetry {
				rec = telemetry.New(telemetry.Config{})
				planner.Telemetry = rec
			}
			return sched.New(sched.Config{
				Pool:      []backend.Backend{&benchTelemetryBackend{}},
				Planner:   planner,
				Seed:      7,
				Telemetry: rec,
			})
		}
		sOff, err := mk(false)
		if err != nil {
			b.Fatal(err)
		}
		defer sOff.Close()
		sOn, err := mk(true)
		if err != nil {
			b.Fatal(err)
		}
		defer sOn.Close()

		// One planned, deadline-bearing request dispatched over and over: the
		// planner sizes the read budget (StagePlan) and the respond path
		// classifies slack on every trip. Blocks of dispatches alternate
		// between the two schedulers (a paired measurement), so a host noise
		// episode lands on both modes instead of skewing whichever row
		// happened to be running — the off/on ratio stays honest even when
		// absolute rates wobble.
		const blockDispatches = 50
		const blocksPerOp = benchDispatchesPerOp / blockDispatches
		ctx := context.Background()
		p := probs[0]
		run := func(s *sched.Scheduler) time.Duration {
			start := time.Now()
			for k := 0; k < blockDispatches; k++ {
				if _, err := s.Dispatch(ctx, p, time.Minute); err != nil {
					b.Fatal(err)
				}
			}
			return time.Since(start)
		}
		var offTime, onTime time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for blk := 0; blk < blocksPerOp; blk++ {
				offTime += run(sOff)
				onTime += run(sOn)
			}
		}
		b.StopTimer()
		total := float64(b.N * blocksPerOp * blockDispatches)
		b.ReportMetric(total/offTime.Seconds(), "off-dispatches/s")
		b.ReportMetric(total/onTime.Seconds(), "on-dispatches/s")
	})
}

// BenchmarkCoherenceWindow measures the compile/execute split's serving
// value: decoding W-symbol coherence windows (one channel H, W received
// vectors) with the channel compiled ONCE per window versus recompiled per
// symbol. W = 1 prices the split's overhead, W = 14 is one LTE slot's OFDM
// symbols, W = 140 a 10 ms frame. The paper's headline 48-user BPSK problem
// with a single-read budget (Na = 1, no pause) isolates the per-symbol
// classical overhead the split removes — reduction Gram, coupler embedding,
// adjacency preparation — from the (unchanged) anneal time. Windows
// alternate between two channels against a one-entry channel cache, so every
// compiled window pays its full compile: the measured gain is pure
// amortization, not cache warmth. symbols/s is the acceptance metric
// (compiled ≥ 3× recompile at W = 14, recorded in BENCH_PR3.json by
// tools/benchjson).
func BenchmarkCoherenceWindow(b *testing.B) {
	const nt = 48
	mod := modulation.BPSK
	params := anneal.Params{AnnealTimeMicros: 1, NumAnneals: 1}
	chans := make([]*linalg.Mat, 2)
	ys := make([][][]complex128, 2)
	const maxW = 140
	src := rng.New(9)
	for c := range chans {
		chans[c] = channel.RandomPhase{}.Generate(src, nt, nt)
		ys[c] = make([][]complex128, maxW)
		for w := range ys[c] {
			bits := src.Bits(nt * mod.BitsPerSymbol())
			ys[c][w] = channel.AddAWGN(src, linalg.MulVec(chans[c], mod.MapGrayVector(bits)), 0.05)
		}
	}
	for _, w := range []int{1, 14, 140} {
		for _, compiled := range []bool{false, true} {
			mode := "recompile"
			if compiled {
				mode = "compiled"
			}
			b.Run(fmt.Sprintf("W=%d/mode=%s", w, mode), func(b *testing.B) {
				dec, err := quamax.NewDecoder(quamax.Options{Params: params, ChannelCache: 1})
				if err != nil {
					b.Fatal(err)
				}
				src := rng.New(17)
				// Warm the (size-keyed, both-mode) embedding caches so the
				// one-time placement search stays out of the timing.
				if _, err := dec.Decode(mod, chans[0], ys[0][0], src); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c := i % 2
					if compiled {
						cc, err := dec.Compile(mod, chans[c])
						if err != nil {
							b.Fatal(err)
						}
						for s := 0; s < w; s++ {
							if _, err := dec.DecodeCompiled(cc, ys[c][s], src); err != nil {
								b.Fatal(err)
							}
						}
					} else {
						for s := 0; s < w; s++ {
							if _, err := dec.Decode(mod, chans[c], ys[c][s], src); err != nil {
								b.Fatal(err)
							}
						}
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(w*b.N)/b.Elapsed().Seconds(), "symbols/s")
			})
		}
	}
}

// BenchmarkPrecodeWindow measures the downlink compile/execute split's
// serving value: vector-perturbation precoding W-symbol-vector coherence
// windows (one downlink channel H, W user-data vectors) with the VP program
// compiled ONCE per window versus recompiled per vector. The compiled path
// pays the channel inversion, coupling compile, embedding and adjacency
// preparation once; the recompile path pays all of it per vector. 24-user
// QPSK with the 1-bit alphabet reduces to the same 48-spin clique as the
// uplink coherence benchmark, and the single-read budget (Na = 1, no pause)
// isolates the amortized classical overhead from the (unchanged) anneal
// time. Windows alternate between two channels against one-entry program and
// channel caches, so every compiled window pays its full compile. Both modes
// run identical symbol sequences on identically-seeded random streams, and
// the paths are proven bit-identical, so the reported mean gamma (transmit
// power) is equal by construction — the "equal perturbation quality" half of
// the acceptance bar, which tools/benchjson -check enforces alongside the
// ≥2× precodes/s ratio recorded in BENCH_PR4.json.
func BenchmarkPrecodeWindow(b *testing.B) {
	const (
		users = 24
		bits  = 1
		maxW  = 140
	)
	mod := modulation.QPSK
	params := anneal.Params{AnnealTimeMicros: 1, NumAnneals: 1}
	src := rng.New(31)
	chans := make([]*linalg.Mat, 2)
	svecs := make([][][]complex128, 2)
	for c := range chans {
		chans[c] = channel.RandomPhase{}.Generate(src, users, users)
		svecs[c] = make([][]complex128, maxW)
		for w := range svecs[c] {
			svecs[c][w] = mod.MapGrayVector(src.Bits(users * mod.BitsPerSymbol()))
		}
	}
	for _, w := range []int{1, 14, 140} {
		for _, compiled := range []bool{false, true} {
			mode := "recompile"
			if compiled {
				mode = "compiled"
			}
			b.Run(fmt.Sprintf("W=%d/mode=%s", w, mode), func(b *testing.B) {
				dec, err := quamax.NewDecoder(quamax.Options{Params: params, ChannelCache: 1})
				if err != nil {
					b.Fatal(err)
				}
				prec, err := precoding.NewPrecoder(dec, bits, 1)
				if err != nil {
					b.Fatal(err)
				}
				src := rng.New(37)
				// Warm the (size-keyed, both-mode) embedding caches so the
				// one-time placement search stays out of the timing.
				if _, err := prec.PrecodeRecompile(mod, chans[0], svecs[0][0], src); err != nil {
					b.Fatal(err)
				}
				var gammaSum float64
				var precodes int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c := i % 2
					if compiled {
						prog, err := prec.Compile(mod, chans[c])
						if err != nil {
							b.Fatal(err)
						}
						for s := 0; s < w; s++ {
							res, err := prec.Precode(prog, svecs[c][s], src)
							if err != nil {
								b.Fatal(err)
							}
							gammaSum += res.Gamma
							precodes++
						}
					} else {
						for s := 0; s < w; s++ {
							res, err := prec.PrecodeRecompile(mod, chans[c], svecs[c][s], src)
							if err != nil {
								b.Fatal(err)
							}
							gammaSum += res.Gamma
							precodes++
						}
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(precodes)/b.Elapsed().Seconds(), "precodes/s")
				b.ReportMetric(gammaSum/float64(precodes), "gamma")
			})
		}
	}
}

// BenchmarkSoftDecode prices the soft-output path against the hard decode
// it extends, at an EQUAL anneal budget (the paper's Fig. 13 fixed-user
// config: 14-user QPSK, Na = 100). The two modes run identical anneals on
// identically-seeded streams; the soft mode additionally retains the read
// ensemble and extracts per-bit LLRs (internal/softout), which is pure
// classical post-processing — one Gray translation and one candidate-list
// insert per read, reusing the energies the hard path already computed. The
// acceptance bar (enforced by tools/benchjson -check against BENCH_PR5.json)
// is soft overhead ≤ 1.5×: soft decodes/s must stay within 1.5× of hard.
func BenchmarkSoftDecode(b *testing.B) {
	in := benchInstance(b, modulation.QPSK, 14, 20)
	spec := softout.Spec{NoiseVar: in.NoiseVariance()}
	for _, mode := range []string{"hard", "soft"} {
		b.Run("mode="+mode, func(b *testing.B) {
			dec, err := quamax.NewDecoder(quamax.Options{})
			if err != nil {
				b.Fatal(err)
			}
			src := rng.New(3)
			// Warm the embedding cache so placement search stays untimed.
			if _, err := dec.Decode(in.Mod, in.H, in.Y, src); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "soft" {
					if _, err := dec.DecodeSoft(in.Mod, in.H, in.Y, spec, src); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, err := dec.Decode(in.Mod, in.H, in.Y, src); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decodes/s")
		})
	}
}

// BenchmarkSoftViterbi measures the soft-decision FEC decoder at a
// 1,500-byte frame, the soft counterpart of BenchmarkViterbi.
func BenchmarkSoftViterbi(b *testing.B) {
	c := coding.NewWiFiCode()
	src := rng.New(8)
	data := src.Bits(12000)
	coded := c.Encode(data)
	llrs := make([]float64, len(coded))
	for i, bit := range coded {
		mag := 0.5 + 7*src.Float64()
		if bit == 1 {
			llrs[i] = mag
		} else {
			llrs[i] = -mag
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeSoft(llrs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViterbi measures the FEC decoder at a 1,500-byte frame.
func BenchmarkViterbi(b *testing.B) {
	c := coding.NewWiFiCode()
	src := rng.New(8)
	data := src.Bits(12000)
	coded := c.Encode(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(coded); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQAOA regenerates the gate-model QAOA extension table (§6/§8).
func BenchmarkQAOA(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.QAOAExperiment(e, experiments.QAOAQuick())
	})
}

// costBenchDeviceMicros paces the cost benchmark's simulated QPU exactly as
// BenchmarkShardedServe paces its devices: the annealer chip stays busy for
// this long per decode, so the spend comparison prices device occupancy —
// the thing the QPU lease actually bills — rather than host CPU time.
const costBenchDeviceMicros = shardedDeviceMicros

// BenchmarkCostAwareDispatch prices the fleet-economics dispatch policy: one
// fixed multi-user offered load (QPSK 4×4 at 28 dB with an easy 1e-3 BER
// target — the planner sizes shallow read budgets, so QPU reads buy no extra
// QoS) is replayed through the same pool twice, once with latency-only
// dispatch (mode=latency) and once with Config.CostAware (mode=cost). Both
// modes run a paced simulated QPU with a classical-SA fallback beside it and
// report per-decode spend from the schedulers' capability-descriptor
// counters, the deadline-miss rate, and the uncoded BER against the
// transmitted bits. The acceptance bar (tools/benchjson -check,
// BENCH_PR9.json) requires cost-aware spend at most 75% of latency-only at
// an equal miss rate and no BER giveback: cheaper must not mean worse.
func BenchmarkCostAwareDispatch(b *testing.B) {
	mod := modulation.QPSK
	cfg := trace.DefaultMultiUserConfig()
	cfg.Cells = 16
	cfg.Users = 256
	cfg.Requests = 256
	cfg.WindowUses = 8
	cfg.Antennas, cfg.CellUsers = 4, 4
	src := rng.New(31)
	tr, err := trace.GenerateMultiUser(src, cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr.Dataset().NormalizeAveragePower()
	type job struct {
		p    *backend.Problem
		bits []byte
	}
	jobs := make([]job, len(tr.Requests))
	for i, r := range tr.Requests {
		bits := src.Bits(cfg.CellUsers * mod.BitsPerSymbol())
		inst, err := mimo.FromParts(src, mimo.Config{
			Mod: mod, Nt: cfg.CellUsers, Nr: cfg.Antennas,
			Channel: channel.Fixed{H: r.H, Label: "cell"}, SNRdB: 28,
		}, r.H, bits)
		if err != nil {
			b.Fatal(err)
		}
		jobs[i] = job{
			p: &backend.Problem{
				Mod: inst.Mod, H: inst.H, Y: inst.Y,
				ChannelKey: core.FingerprintChannel(mod, r.H),
				TargetBER:  1e-3,
			},
			bits: bits,
		}
	}
	for _, costAware := range []bool{false, true} {
		name := "mode=latency"
		if costAware {
			name = "mode=cost"
		}
		b.Run(name, func(b *testing.B) {
			qpu, err := backend.NewAnnealer("qpu0", quamax.Options{
				Graph:        chimera.New(6),
				Params:       anneal.Params{AnnealTimeMicros: 1, NumAnneals: 10},
				ChannelCache: 512,
			})
			if err != nil {
				b.Fatal(err)
			}
			planner, err := qos.NewPlanner(nil)
			if err != nil {
				b.Fatal(err)
			}
			s, err := sched.New(sched.Config{
				Pool:         []backend.Backend{&qpuDevice{qpu}},
				Fallback:     backend.NewClassicalSA("sa", 64, 8),
				Planner:      planner,
				CostAware:    costAware,
				DisableBatch: true,
				Seed:         3,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			var mu sync.Mutex
			var bitErrs, bitTotal uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				sem := make(chan struct{}, 16)
				for _, j := range jobs {
					wg.Add(1)
					sem <- struct{}{}
					go func(j job) {
						defer wg.Done()
						defer func() { <-sem }()
						res, err := s.Dispatch(ctx, j.p, time.Minute)
						if err != nil {
							b.Error(err)
							return
						}
						var errs uint64
						for k := range j.bits {
							if k < len(res.Bits) && res.Bits[k] != j.bits[k] {
								errs++
							}
						}
						mu.Lock()
						bitErrs += errs
						bitTotal += uint64(len(j.bits))
						mu.Unlock()
					}(j)
				}
				wg.Wait()
			}
			b.StopTimer()
			st := s.Stats()
			var spend float64
			for _, be := range st.Backends {
				spend += be.SpendMicroUSD
			}
			decodes := float64(len(jobs) * b.N)
			b.ReportMetric(spend/decodes, "µUSD/decode")
			b.ReportMetric(st.MissRate(), "missrate")
			b.ReportMetric(float64(bitErrs)/float64(bitTotal), "ber")
		})
	}
}

// benchHealthBackend busy-waits a fixed wall duration per solve — the same
// pacing argument as benchTelemetryBackend: run-to-run solver jitter would
// swamp a 5% overhead gate, so the denominator is pinned by construction —
// and reports a stable anneal-quality signature (deep −50 energies at 2%
// chain breaks per 100 reads) for the health tracker's reference window.
// Canary probes are recognizable as the plane's fixed BPSK instance (bench
// traffic is QPSK) and answered at the ground anchor, so an unarmed backend
// always passes re-admission.
type benchHealthBackend struct{ name string }

func (bb *benchHealthBackend) Describe() *backend.Capabilities {
	return &backend.Capabilities{
		Name:    bb.name,
		Latency: func(*backend.Problem) float64 { return benchSolveMicros },
	}
}

func (bb *benchHealthBackend) Solve(ctx context.Context, p *backend.Problem, src *rng.Source) (*backend.Result, error) {
	start := time.Now()
	for time.Since(start) < benchSolveMicros*time.Microsecond {
	}
	if p.Mod == modulation.BPSK { // canary probe
		return &backend.Result{Bits: []byte{0}, Backend: bb.name, Batched: 1, Energy: 0, Reads: 100}, nil
	}
	return &backend.Result{
		Bits: []byte{0}, Backend: bb.name, Batched: 1,
		Energy: -50, Reads: 100, BrokenChains: 2,
	}, nil
}

// BenchmarkHealthGatedServe prices the solver-health plane under the fault it
// exists for: a five-member pool serves a fixed deadline-bearing load while
// one member is degraded by an armed backend.Degrader — its solves stall just
// past the deadline and its anneal quality drifts (energy lift + chain-break
// storm). The same injected degradation is replayed twice: health=off (the
// scheduler keeps feeding the sick member, every solve it claims misses its
// deadline) and health=on (the drift detector quarantines it off the
// baseline it learned during the unarmed warmup, traffic reroutes, and armed
// canary probes keep it out). Both modes report decodes/s and the
// deadline-miss rate over the armed region only. tools/benchjson -check
// (BENCH_PR10.json) holds health-on throughput within 5% of health-off —
// quarantining a member may only cost its capacity share, not stall the pool
// — and requires a strictly lower health-on missrate: the plane must convert
// detection into fewer client-visible deadline misses, or it is overhead.
func BenchmarkHealthGatedServe(b *testing.B) {
	const (
		healthyMembers = 4
		concurrency    = 10
		warmup         = 200
		deadline       = 2 * time.Millisecond
		// sickStall pushes the sick member's solves just past the deadline:
		// far enough that every solve it claims misses, close enough that the
		// slow worker still pulls a measurable share of the FIFO queue in the
		// health=off mode.
		sickStall = 2300 * time.Microsecond
	)
	src := rng.New(31)
	in, err := mimo.Generate(src, mimo.Config{
		Mod: modulation.QPSK, Nt: 4, Nr: 4,
		Channel: channel.RandomPhase{}, SNRdB: 28,
	})
	if err != nil {
		b.Fatal(err)
	}
	prob := &backend.Problem{Mod: in.Mod, H: in.H, Y: in.Y}

	for _, mode := range []string{"off", "on"} {
		b.Run("health="+mode, func(b *testing.B) {
			sick := backend.NewDegrader(&benchHealthBackend{name: "sick"}, backend.DegraderFaults{
				ExtraLatency:   sickStall,
				ChainBreakRate: 0.5, // 2% → ~52% broken chains per read
				EnergyDrift:    0.5, // −50 → −25 best energy; canary 0 → +0.5
			})
			pool := []backend.Backend{sick}
			for i := 0; i < healthyMembers; i++ {
				pool = append(pool, &benchHealthBackend{name: fmt.Sprintf("ok%d", i)})
			}
			cfg := sched.Config{Pool: pool, DisableBatch: true, Seed: 1}
			if mode == "on" {
				cfg.Health = health.NewTracker(health.Config{})
				cfg.Burn = health.NewBurnTracker(1, health.SLOConfig{})
				cfg.CanarySeed = 7
			}
			s, err := sched.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			serve := func(n int) {
				sem := make(chan struct{}, concurrency)
				var wg sync.WaitGroup
				for j := 0; j < n; j++ {
					sem <- struct{}{}
					wg.Add(1)
					go func() {
						defer wg.Done()
						defer func() { <-sem }()
						if _, err := s.Dispatch(ctx, prob, deadline); err != nil {
							b.Error(err)
						}
					}()
				}
				wg.Wait()
			}
			// Unarmed warmup: the tracker learns the healthy signature before
			// the fault lands, exactly as a production pool would have.
			serve(warmup)
			sick.SetDegraded(true)
			pre := s.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				serve(benchDispatchesPerOp)
			}
			b.StopTimer()
			st := s.Stats()
			b.ReportMetric(float64(benchDispatchesPerOp*b.N)/b.Elapsed().Seconds(), "decodes/s")
			completed := st.Completed - pre.Completed
			misses := st.DeadlineMisses - pre.DeadlineMisses
			b.ReportMetric(float64(misses)/float64(completed), "missrate")
		})
	}
}
