// Package quamax is the public API of QuAMax-Go, a reproduction of
// "Leveraging Quantum Annealing for Large MIMO Processing in Centralized
// Radio Access Networks" (Kim, Venturelli, Jamieson — SIGCOMM 2019).
//
// QuAMax decodes multi-user MIMO uplink transmissions by reducing
// Maximum-Likelihood detection to an Ising problem, embedding it on a
// Chimera-topology quantum annealer, and post-translating the annealer's
// output back into Gray-coded data bits. This repository substitutes the
// D-Wave 2000Q with a faithful device simulator (see internal/anneal); the entire
// pipeline — reduction, embedding, annealing schedule, ICE noise, majority
// voting, post-translation — is the paper's.
//
// # Quick start
//
//	dec, err := quamax.NewDecoder(quamax.Options{})
//	if err != nil { ... }
//	src := quamax.NewSource(1)
//	inst, err := quamax.NewInstance(src, quamax.InstanceConfig{
//		Mod: quamax.QPSK, Users: 4, Antennas: 4, SNRdB: 20,
//	})
//	out, err := dec.DecodeInstance(inst, src)
//	fmt.Println(out.Bits) // decoded Gray-coded data bits
//
// See examples/ for runnable programs, cmd/quamax for the experiment
// harness, and internal/* for the subsystem implementations.
package quamax

import (
	"math"

	"quamax/internal/anneal"
	"quamax/internal/channel"
	"quamax/internal/chimera"
	"quamax/internal/core"
	"quamax/internal/linalg"
	"quamax/internal/metrics"
	"quamax/internal/mimo"
	"quamax/internal/modulation"
	"quamax/internal/precoding"
	"quamax/internal/rng"
	"quamax/internal/softout"
)

// Modulation selects the constellation.
type Modulation = modulation.Modulation

// Supported modulations.
const (
	BPSK  = modulation.BPSK
	QPSK  = modulation.QPSK
	QAM16 = modulation.QAM16
	QAM64 = modulation.QAM64
)

// Decoder is the QuAMax ML MIMO decoder (reduce → embed → anneal →
// majority-vote → post-translate). Safe for concurrent use.
type Decoder = core.Decoder

// Options configure a Decoder; the zero value selects the paper's operating
// point on a simulated DW2Q.
type Options = core.Options

// Outcome is one decoded channel use.
type Outcome = core.Outcome

// AnnealParams are the per-run annealer knobs (anneal time Ta, pause Tp at
// position sp, batch size Na).
type AnnealParams = anneal.Params

// Source is the deterministic random source driving every stochastic
// component.
type Source = rng.Source

// Matrix is a dense complex channel matrix (row-major, Nr×Nt).
type Matrix = linalg.Mat

// Instance is one uplink channel use with ground truth for evaluation.
type Instance = mimo.Instance

// Distribution is the rank-ordered annealer solution distribution; it
// evaluates the paper's Eq. 9 expected BER and the TTB/TTF/TTS metrics.
type Distribution = metrics.Distribution

// NewDecoder constructs a decoder, filling unset options with the paper's
// defaults (DW2Q chip model, calibrated machine, improved dynamic range,
// |J_F| = 4, Ta = Tp = 1 µs).
func NewDecoder(opts Options) (*Decoder, error) { return core.New(opts) }

// NewSource returns a seeded random source.
func NewSource(seed int64) *Source { return rng.New(seed) }

// DW2Q returns the chip model of the paper's annealer (2,031 working qubits
// on a C16 Chimera graph).
func DW2Q() *chimera.Graph { return chimera.DW2Q() }

// NewMachine returns the calibrated annealer simulator; adjust its fields
// (ICE, sweep rate) for ablations.
func NewMachine() *anneal.Machine { return anneal.NewMachine() }

// ChannelModel draws channel matrices. RayleighChannel and
// RandomPhaseChannel are the models the paper evaluates.
type ChannelModel = channel.Model

// RayleighChannel returns i.i.d. CN(0,1) fading.
func RayleighChannel() ChannelModel { return channel.Rayleigh{} }

// RandomPhaseChannel returns the unit-gain random-phase model of §5.3.
func RandomPhaseChannel() ChannelModel { return channel.RandomPhase{} }

// InstanceConfig describes an uplink channel use to generate.
type InstanceConfig struct {
	Mod      Modulation
	Users    int // transmitters (one antenna each)
	Antennas int // AP receive antennas (≥ Users)
	// SNRdB is the receive SNR; NoiseFree() for the annealer-noise-only
	// scenarios of §5.3.
	SNRdB float64
	// Channel defaults to RandomPhaseChannel().
	Channel ChannelModel
}

// NoiseFree is the SNRdB value that disables channel noise.
func NoiseFree() float64 { return math.Inf(1) }

// Precoder is the downlink vector-perturbation precoder: it solves the
// NP-hard transmit-power search min_v ‖H⁺(s+τv)‖² on a Decoder with the
// same compile/execute economics as uplink decoding (see
// internal/precoding).
type Precoder = precoding.Precoder

// VPProgram is one compiled downlink coherence window: the channel
// inversion, the equivalent uplink Ising couplings, and the coherence
// fingerprint.
type VPProgram = precoding.Program

// VPResult is one solved vector-perturbation search: the perturbation, the
// precoded transmit vector, and the minimized transmit power γ.
type VPResult = precoding.Result

// NewPrecoder wraps a decoder as a VP precoder. perturbBits selects the
// perturbation alphabet depth per dimension (0 = 1 bit, v ∈ {−1,0}²);
// cacheSize bounds the compiled-program LRU (0 = default).
func NewPrecoder(dec *Decoder, perturbBits, cacheSize int) (*Precoder, error) {
	return precoding.NewPrecoder(dec, perturbBits, cacheSize)
}

// SoftSpec configures a soft-output decode (Decoder.DecodeSoft and
// friends): the noise variance scaling the per-bit LLRs, the LLR clamp, and
// the candidate-list cap. See internal/softout for the max-log-MAP formula
// and the positive-favors-1 sign convention.
type SoftSpec = softout.Spec

// NewInstance draws one channel use: random data bits, a channel from the
// configured model, AWGN at the requested SNR.
func NewInstance(src *Source, cfg InstanceConfig) (*Instance, error) {
	ch := cfg.Channel
	if ch == nil {
		ch = channel.RandomPhase{}
	}
	return mimo.Generate(src, mimo.Config{
		Mod: cfg.Mod, Nt: cfg.Users, Nr: cfg.Antennas, Channel: ch, SNRdB: cfg.SNRdB,
	})
}
