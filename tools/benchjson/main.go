// Command benchjson runs the repository's tier-1 benchmarks and writes a
// machine-readable JSON summary, so the performance trajectory across PRs
// has concrete data points instead of prose claims. The default selection
// covers the coherence-window and precode-window acceptance benchmarks and
// the decode-path micro-benchmarks they amortize; -bench overrides it with
// any `go test -bench` regular expression.
//
// Run it from the repository root:
//
//	go run ./tools/benchjson -out BENCH_PR5.json
//
// Every benchmark line is parsed into its name, iteration count and metric
// map (ns/op, B/op, custom metrics like symbols/s), preserving exactly what
// the testing package reported.
//
// With -check, benchjson runs no benchmarks. Instead it audits the committed
// BENCH_PR*.json history as a CI gate:
//
//   - the newest snapshot must contain the compiled-mode coherence-window
//     (symbols/s) and precode-window (precodes/s) acceptance rows, the
//     soft-vs-hard decode acceptance rows (BenchmarkSoftDecode, decodes/s),
//     the paired telemetry-overhead row
//     (BenchmarkSchedulerPlanner/telemetry, off-/on-dispatches/s), and the
//     anneal-engine acceptance rows
//     (BenchmarkAnneal48BPSK/mode=scalar and /mode=multispin, ns/op + gsrate),
//     and the sharded-serving acceptance rows
//     (BenchmarkShardedServe/shards=1 and /shards=4, decodes/s + missrate +
//     cachehit), and the fleet-economics acceptance rows
//     (BenchmarkCostAwareDispatch/mode=latency and /mode=cost, µUSD/decode +
//     missrate + ber), and the solver-health acceptance rows
//     (BenchmarkHealthGatedServe/health=off and /health=on, decodes/s +
//     missrate);
//   - within the newest snapshot, compiled-mode throughput must be at least
//     2× the per-symbol recompile mode at every window size W ≥ 14, the
//     precode benchmark's mean gamma must agree between modes (the
//     equal-perturbation-quality half of the acceptance bar), the soft
//     decode must stay within 1.5× of the hard decode at equal Na (LLR
//     extraction is post-processing, not another anneal), and the
//     telemetry=on dispatch rate must stay within 5% of telemetry=off (the
//     observability plane must be cheap enough to leave on), and the
//     bit-parallel multi-spin engine must clear 5× the scalar device
//     simulator's ns/op at a ground-state success rate no more than 0.02
//     below it (speed bought by butchering solution quality does not count),
//     and the 4-shard serving tier must clear 2.5× the single pool's
//     decodes/s with no deadline-miss regression and a compiled-channel hit
//     rate within 5 points of the single pool's (throughput bought by
//     shattering cache affinity does not count either), and the cost-aware
//     dispatch mode must record at most 75% of the latency-only mode's
//     per-decode spend at an equal deadline-miss rate with no BER giveback
//     (spend saved by serving QoS classes worse does not count), and the
//     health-gated serving mode must stay within 5% of the ungated
//     throughput while recording a strictly lower deadline-miss rate under
//     the same injected degradation (a health plane that doesn't convert
//     detection into fewer misses is pure overhead);
//   - across snapshots recorded on the same goos/goarch, no headline
//     throughput metric (any metric ending in "/s" on a compiled-mode
//     gated-window row or a non-window benchmark) may regress more than
//     15% from its best committed value, measured relative to the snapshot
//     pair's median headline drift: two same-arch sessions can still differ
//     uniformly in raw speed (container placement, CPU frequency), so a
//     recording made on a slower machine shifts every row together and the
//     median absorbs it, while a genuine single-subsystem regression moves
//     its rows against a stable median and still fails. The correction only
//     engages when the pair shares enough rows to make the median
//     trustworthy, and a row is only failed when it regresses against at
//     least two committed snapshots (or the only one recording it): a real
//     regression is a property of the tree and reproduces against every
//     baseline, while a single-pair flag is an artifact of that pair's
//     drift estimate on a host whose slowdown is not uniform across
//     subsystems.
//
// The intra-snapshot ratio checks are machine-independent; the history check
// compares only numbers recorded into the repository, so the gate is
// deterministic in CI.
//
// With -traces, benchjson ingests a telemetry trace dump (the JSON written
// by quamax-serve/examples/tracedriven -trace-out) instead of running
// benchmarks, and emits one BENCH row per pipeline stage with
// p50/p95/p99/mean/max latency columns, plus one TraceExemplar row per
// pinned worst-slack trace — the per-stage distributions and the named
// worst requests join the same machine-readable trajectory the throughput
// rows live in:
//
//	go run ./tools/benchjson -traces dump.json -out TRACES.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"quamax/internal/telemetry"
)

// defaultBench selects the benchmarks the perf trajectory tracks: the two
// compile/execute acceptance benchmarks (uplink coherence windows, downlink
// precode windows) plus the micro-benchmarks of the stages they amortize.
const defaultBench = "BenchmarkCoherenceWindow|BenchmarkPrecodeWindow|BenchmarkSoftDecode|BenchmarkSchedulerPlanner|BenchmarkShardedServe|BenchmarkCostAwareDispatch|BenchmarkHealthGatedServe|BenchmarkReduceToIsing$|BenchmarkEmbedIsing$|BenchmarkAnneal48BPSK$|BenchmarkDecodeEndToEnd$"

// maxRegression is the fractional headline-throughput loss tolerated against
// the best committed snapshot (after median-drift correction) before -check
// fails the build.
const maxRegression = 0.15

// minDriftPairs is the minimum number of shared headline metrics a snapshot
// pair needs before its median ratio is trusted as the machines' uniform
// speed drift; sparser pairs compare raw values.
const minDriftPairs = 5

// minCompiledRatio is the required compiled/recompile throughput advantage
// at every window size W ≥ minGatedWindow.
const minCompiledRatio = 2.0

// minGatedWindow is the smallest window size the ratio gate applies to
// (W = 1 deliberately prices the split's overhead and is exempt).
const minGatedWindow = 14

// maxSoftOverhead is the tolerated soft-decode slowdown at equal Na: the
// soft mode's decodes/s must be at least hard/maxSoftOverhead.
const maxSoftOverhead = 1.5

// maxTelemetryOverhead is the tolerated serving-path slowdown with the
// telemetry recorder attached: BenchmarkSchedulerPlanner/telemetry's
// on-dispatches/s must be at least off-dispatches/s/maxTelemetryOverhead.
// The bound prices the whole tracing tax — trace allocation, per-stage
// clock reads, histogram observations and the ring append — against a
// realistic minimum solve (benchSolveMicros in the root bench harness).
const maxTelemetryOverhead = 1.05

// minMultiSpinSpeedup is the required ns/op advantage of the bit-parallel
// multi-spin anneal engine over the scalar device simulator on the 48-user
// BPSK acceptance benchmark.
const minMultiSpinSpeedup = 5.0

// maxGSRateLoss is the tolerated ground-state success-rate deficit of the
// multi-spin engine against the scalar device simulator on the same
// benchmark: a speedup that costs more than this much quality fails the gate.
const maxGSRateLoss = 0.02

// minShardSpeedup is the required decodes/s advantage of the 4-shard serving
// tier over the single pool on BenchmarkShardedServe's fixed offered load.
// The benchmark paces decodes on simulated QPU occupancy, so the ratio
// measures the router's ability to keep N devices fed (affinity placement
// balance included), not host core count.
const minShardSpeedup = 2.5

// maxShardCacheLoss is the tolerated compiled-channel hit-rate deficit
// (absolute points) of the sharded tier against the single pool: affinity
// routing must preserve cache locality, not shatter it.
const maxShardCacheLoss = 0.05

// maxShardMissEps absorbs float formatting noise in the missrate comparison;
// the benchmark's deadlines are generous enough that both modes record
// exactly zero.
const maxShardMissEps = 1e-9

// maxCostSpendShare is the largest fraction of the latency-only per-decode
// spend the cost-aware dispatch mode may record on
// BenchmarkCostAwareDispatch's fixed offered load: economics-aware dispatch
// must be at least 25% cheaper at an equal deadline-miss rate.
const maxCostSpendShare = 0.75

// maxCostBERLoss is the tolerated uncoded-BER giveback of the cost-aware
// mode against latency-only dispatch on the same load: spend saved by
// serving requests worse than their QoS class does not count.
const maxCostBERLoss = 0.005

// maxHealthOverhead is the tolerated serving-path slowdown with the
// solver-health plane attached on BenchmarkHealthGatedServe's injected
// degradation: health=on decodes/s must be at least off/maxHealthOverhead.
// Quarantining the degraded member may cost its capacity share and the
// tracker's per-solve bookkeeping, but must not stall the pool.
const maxHealthOverhead = 1.05

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the file benchjson writes.
type Report struct {
	GoVersion string   `json:"go_version"`
	GoOS      string   `json:"goos"`
	GoArch    string   `json:"goarch"`
	Bench     string   `json:"bench_regex"`
	BenchTime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

// benchLine matches one `go test -bench` result row; the trailing -N
// GOMAXPROCS suffix is stripped from the name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func main() {
	var (
		bench     = flag.String("bench", defaultBench, "benchmark selection regexp (go test -bench)")
		benchtime = flag.String("benchtime", "5x", "per-benchmark budget (go test -benchtime)")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("out", "BENCH_PR5.json", "output JSON path")
		check     = flag.Bool("check", false, "audit the committed BENCH_PR*.json history instead of running benchmarks")
		traces    = flag.String("traces", "", "telemetry trace dump (-trace-out JSON) to ingest instead of running benchmarks")
	)
	flag.Parse()

	if *check {
		if err := checkHistory("."); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Println("benchjson: history check ok")
		return
	}

	if *traces != "" {
		if err := ingestTraces(*traces, *out); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench, "-benchtime", *benchtime, *pkg)
	raw, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Stderr.Write(ee.Stderr)
		}
		fmt.Fprintf(os.Stderr, "benchjson: go test: %v\n%s", err, raw)
		os.Exit(1)
	}

	report := Report{
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		Bench:     *bench,
		BenchTime: *benchtime,
	}
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: m[1], Iterations: iters, Metrics: parseMetrics(m[3])}
		if len(res.Metrics) == 0 {
			continue
		}
		report.Results = append(report.Results, res)
	}
	if len(report.Results) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines matched %q\n", *bench)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(report.Results), *out)
}

// parseMetrics reads the value/unit pairs of one result row, e.g.
// "123 ns/op\t 45.6 symbols/s".
func parseMetrics(rest string) map[string]float64 {
	fields := strings.Fields(rest)
	metrics := make(map[string]float64)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		metrics[fields[i+1]] = v
	}
	return metrics
}

// ingestTraces converts a telemetry trace dump into BENCH rows: one row per
// occupied pipeline stage (plus the fronthaul wire and the deadline-slack
// sides) carrying p50/p95/p99/mean/max latency columns in microseconds. The
// latency units deliberately do not end in "/s", so trace rows never enter
// the throughput-regression gate. When the dump carries a pool snapshot,
// the telemetry plane's reconciliation invariant is enforced before
// anything is written: Submitted == Completed+Failed == trace count.
func ingestTraces(path, out string) error {
	d, err := telemetry.ReadDump(path)
	if err != nil {
		return err
	}
	if d.Snapshot == nil {
		return fmt.Errorf("%s: dump has no snapshot", path)
	}
	if p := d.Pool; p != nil {
		if p.Submitted != p.Completed+p.Failed || p.Submitted != d.Snapshot.Traces {
			return fmt.Errorf("%s: traces do not reconcile with pool counters: submitted=%d completed+failed=%d traces=%d",
				path, p.Submitted, p.Completed+p.Failed, d.Snapshot.Traces)
		}
	}

	report := Report{
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		Bench:     "traces:" + path,
	}
	row := func(name string, s telemetry.StageSummary) {
		if s.Count == 0 {
			return
		}
		report.Results = append(report.Results, Result{
			Name:       name,
			Iterations: int64(s.Count),
			Metrics: map[string]float64{
				"p50-µs":  s.P50Micros,
				"p95-µs":  s.P95Micros,
				"p99-µs":  s.P99Micros,
				"mean-µs": s.MeanMicros,
				"max-µs":  s.MaxMicros,
			},
		})
	}
	for _, name := range telemetry.StageNames() {
		row("TraceStage/"+name, d.Stages[name])
	}
	row("TraceWire", d.Wire)
	row("TraceSlack/met", d.SlackMet)
	row("TraceSlack/missed", d.SlackMissed)
	// Exemplar rows name the pinned worst-slack traces individually (worst
	// first — index 0 is the window's worst request): the per-stage summaries
	// above say how bad the tail is, these say which requests it was made of.
	// Latency/slack units, so they never enter the throughput gate either.
	for i, ex := range d.Exemplars {
		metrics := map[string]float64{
			"e2e-µs": ex.Stages[telemetry.StageE2E],
		}
		if ex.DeadlineMicros > 0 {
			metrics["deadline-µs"] = ex.DeadlineMicros
			metrics["slack-µs"] = ex.SlackMicros
		}
		report.Results = append(report.Results, Result{
			Name:       fmt.Sprintf("TraceExemplar/%d", i),
			Iterations: 1,
			Metrics:    metrics,
		})
	}
	if len(report.Results) == 0 {
		return fmt.Errorf("%s: dump holds no observations", path)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: wrote %d trace rows (%d traces) to %s\n",
		len(report.Results), d.Snapshot.Traces, out)
	return nil
}

// snapshot pairs a parsed history file with the PR number from its name.
type snapshot struct {
	path string
	pr   int
	Report
}

// historyFile extracts the PR ordinal from a BENCH_PR<N>.json name.
var historyFile = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// windowRow destructures an acceptance-benchmark name like
// "BenchmarkPrecodeWindow/W=14/mode=compiled".
var windowRow = regexp.MustCompile(`^(Benchmark\w+Window)/W=(\d+)/mode=(compiled|recompile)$`)

// loadHistory parses every BENCH_PR*.json in dir, ordered by PR number.
func loadHistory(dir string) ([]snapshot, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []snapshot
	for _, e := range entries {
		m := historyFile.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		pr, _ := strconv.Atoi(m[1])
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		s := snapshot{path: e.Name(), pr: pr}
		if err := json.Unmarshal(data, &s.Report); err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		snaps = append(snaps, s)
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].pr < snaps[j].pr })
	return snaps, nil
}

// metric returns a named metric of a named result, if recorded.
func (s *snapshot) metric(name, unit string) (float64, bool) {
	for _, r := range s.Results {
		if r.Name == name {
			v, ok := r.Metrics[unit]
			return v, ok
		}
	}
	return 0, false
}

// checkHistory is the -check gate. See the package comment for the rules.
func checkHistory(dir string) error {
	snaps, err := loadHistory(dir)
	if err != nil {
		return err
	}
	if len(snaps) == 0 {
		return fmt.Errorf("no BENCH_PR*.json history found in %s", dir)
	}
	newest := snaps[len(snaps)-1]

	var problems []string
	problemf := func(format string, args ...interface{}) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	// 1. The acceptance benchmarks must be present in the newest snapshot.
	required := map[string]string{
		"BenchmarkCoherenceWindow": "symbols/s",
		"BenchmarkPrecodeWindow":   "precodes/s",
	}
	present := map[string]bool{}
	type window struct {
		family string
		w      int
	}
	rows := map[window]map[string]Result{} // mode → result
	for _, r := range newest.Results {
		m := windowRow.FindStringSubmatch(r.Name)
		if m == nil {
			continue
		}
		w, _ := strconv.Atoi(m[2])
		key := window{family: m[1], w: w}
		if rows[key] == nil {
			rows[key] = map[string]Result{}
		}
		rows[key][m[3]] = r
		if unit, ok := required[m[1]]; ok && m[3] == "compiled" {
			if _, has := r.Metrics[unit]; has {
				present[m[1]] = true
			}
		}
	}
	for family, unit := range required {
		if !present[family] {
			problemf("%s: missing compiled-mode %s rows with %q", newest.path, family, unit)
		}
	}

	// 1b. The soft-vs-hard decode acceptance rows (introduced with the
	// soft-output subsystem): both modes present, and soft within the
	// tolerated overhead of hard at equal Na.
	softRate, softOK := newest.metric("BenchmarkSoftDecode/mode=soft", "decodes/s")
	hardRate, hardOK := newest.metric("BenchmarkSoftDecode/mode=hard", "decodes/s")
	switch {
	case !softOK || !hardOK:
		problemf("%s: missing BenchmarkSoftDecode mode=soft/mode=hard rows with \"decodes/s\"", newest.path)
	case !(softRate*maxSoftOverhead >= hardRate):
		problemf("%s: soft decode %.2f decodes/s slower than %gx hard %.2f decodes/s",
			newest.path, softRate, maxSoftOverhead, hardRate)
	}

	// 1c. The telemetry-overhead row (introduced with the telemetry plane):
	// a paired measurement carrying both modes' dispatch rates, with the
	// instrumented serving path within the tolerated tax of the
	// uninstrumented one.
	offRate, offOK := newest.metric("BenchmarkSchedulerPlanner/telemetry", "off-dispatches/s")
	onRate, onOK := newest.metric("BenchmarkSchedulerPlanner/telemetry", "on-dispatches/s")
	switch {
	case !offOK || !onOK:
		problemf("%s: missing BenchmarkSchedulerPlanner/telemetry row with \"off-dispatches/s\" and \"on-dispatches/s\"", newest.path)
	case !(onRate*maxTelemetryOverhead >= offRate):
		problemf("%s: telemetry-on dispatch rate %.2f/s more than %g%% below telemetry-off %.2f/s",
			newest.path, onRate, 100*(maxTelemetryOverhead-1), offRate)
	}

	// 1d. The anneal-engine acceptance rows (introduced with the multi-spin
	// engine): both modes present with ns/op and gsrate, the engine at least
	// minMultiSpinSpeedup× faster, and its success rate within maxGSRateLoss
	// of the device simulator's.
	scalarNs, scalarNsOK := newest.metric("BenchmarkAnneal48BPSK/mode=scalar", "ns/op")
	msNs, msNsOK := newest.metric("BenchmarkAnneal48BPSK/mode=multispin", "ns/op")
	scalarSR, scalarSROK := newest.metric("BenchmarkAnneal48BPSK/mode=scalar", "gsrate")
	msSR, msSROK := newest.metric("BenchmarkAnneal48BPSK/mode=multispin", "gsrate")
	switch {
	case !scalarNsOK || !msNsOK || !scalarSROK || !msSROK:
		problemf("%s: missing BenchmarkAnneal48BPSK mode=scalar/mode=multispin rows with \"ns/op\" and \"gsrate\"", newest.path)
	case !(msNs*minMultiSpinSpeedup <= scalarNs):
		problemf("%s: multi-spin anneal %.0f ns/op not %g× faster than scalar %.0f ns/op (%.2fx)",
			newest.path, msNs, minMultiSpinSpeedup, scalarNs, scalarNs/msNs)
	case !(msSR+maxGSRateLoss >= scalarSR):
		problemf("%s: multi-spin anneal gsrate %.3f more than %g below scalar %.3f",
			newest.path, msSR, maxGSRateLoss, scalarSR)
	}

	// 1e. The sharded-serving acceptance rows (introduced with the front-tier
	// router): shards=1 and shards=4 present with decodes/s, missrate and
	// cachehit; 4 shards at least minShardSpeedup× the single pool's
	// decodes/s, no deadline-miss regression, and the compiled-channel hit
	// rate within maxShardCacheLoss of the single pool's.
	s1Rate, s1RateOK := newest.metric("BenchmarkShardedServe/shards=1", "decodes/s")
	s4Rate, s4RateOK := newest.metric("BenchmarkShardedServe/shards=4", "decodes/s")
	s1Miss, s1MissOK := newest.metric("BenchmarkShardedServe/shards=1", "missrate")
	s4Miss, s4MissOK := newest.metric("BenchmarkShardedServe/shards=4", "missrate")
	s1Hit, s1HitOK := newest.metric("BenchmarkShardedServe/shards=1", "cachehit")
	s4Hit, s4HitOK := newest.metric("BenchmarkShardedServe/shards=4", "cachehit")
	switch {
	case !s1RateOK || !s4RateOK || !s1MissOK || !s4MissOK || !s1HitOK || !s4HitOK:
		problemf("%s: missing BenchmarkShardedServe shards=1/shards=4 rows with \"decodes/s\", \"missrate\" and \"cachehit\"", newest.path)
	default:
		if !(s4Rate >= minShardSpeedup*s1Rate) {
			problemf("%s: 4-shard serving %.1f decodes/s below %g× single-pool %.1f (%.2fx)",
				newest.path, s4Rate, minShardSpeedup, s1Rate, s4Rate/s1Rate)
		}
		if s4Miss > s1Miss+maxShardMissEps {
			problemf("%s: 4-shard missrate %.4f worse than single-pool %.4f",
				newest.path, s4Miss, s1Miss)
		}
		if s1Hit-s4Hit > maxShardCacheLoss {
			problemf("%s: 4-shard cache hit rate %.3f more than %g below single-pool %.3f",
				newest.path, s4Hit, maxShardCacheLoss, s1Hit)
		}
	}

	// 1f. The fleet-economics acceptance rows (introduced with the cost-aware
	// dispatch policy): mode=latency and mode=cost present with µUSD/decode,
	// missrate and ber; the cost-aware mode at most maxCostSpendShare of the
	// latency-only spend, no deadline-miss regression, and no BER giveback
	// beyond maxCostBERLoss.
	latSpend, latSpendOK := newest.metric("BenchmarkCostAwareDispatch/mode=latency", "µUSD/decode")
	costSpend, costSpendOK := newest.metric("BenchmarkCostAwareDispatch/mode=cost", "µUSD/decode")
	latMiss, latMissOK := newest.metric("BenchmarkCostAwareDispatch/mode=latency", "missrate")
	costMiss, costMissOK := newest.metric("BenchmarkCostAwareDispatch/mode=cost", "missrate")
	latBER, latBEROK := newest.metric("BenchmarkCostAwareDispatch/mode=latency", "ber")
	costBER, costBEROK := newest.metric("BenchmarkCostAwareDispatch/mode=cost", "ber")
	switch {
	case !latSpendOK || !costSpendOK || !latMissOK || !costMissOK || !latBEROK || !costBEROK:
		problemf("%s: missing BenchmarkCostAwareDispatch mode=latency/mode=cost rows with \"µUSD/decode\", \"missrate\" and \"ber\"", newest.path)
	default:
		if !(costSpend <= maxCostSpendShare*latSpend) {
			problemf("%s: cost-aware spend %.3f µUSD/decode above %g× latency-only %.3f (%.2fx)",
				newest.path, costSpend, maxCostSpendShare, latSpend, costSpend/latSpend)
		}
		if costMiss > latMiss+maxShardMissEps {
			problemf("%s: cost-aware missrate %.4f worse than latency-only %.4f",
				newest.path, costMiss, latMiss)
		}
		if costBER > latBER+maxCostBERLoss {
			problemf("%s: cost-aware ber %.4f more than %g above latency-only %.4f",
				newest.path, costBER, maxCostBERLoss, latBER)
		}
	}

	// 1g. The solver-health acceptance rows (introduced with the health
	// plane): health=off and health=on present with decodes/s and missrate
	// under the same injected degradation; the gated mode within
	// maxHealthOverhead of the ungated throughput, and a strictly lower
	// deadline-miss rate — detection must buy fewer client-visible misses,
	// or the plane is pure overhead.
	hOffRate, hOffRateOK := newest.metric("BenchmarkHealthGatedServe/health=off", "decodes/s")
	hOnRate, hOnRateOK := newest.metric("BenchmarkHealthGatedServe/health=on", "decodes/s")
	hOffMiss, hOffMissOK := newest.metric("BenchmarkHealthGatedServe/health=off", "missrate")
	hOnMiss, hOnMissOK := newest.metric("BenchmarkHealthGatedServe/health=on", "missrate")
	switch {
	case !hOffRateOK || !hOnRateOK || !hOffMissOK || !hOnMissOK:
		problemf("%s: missing BenchmarkHealthGatedServe health=off/health=on rows with \"decodes/s\" and \"missrate\"", newest.path)
	default:
		if !(hOnRate*maxHealthOverhead >= hOffRate) {
			problemf("%s: health-gated serving %.1f decodes/s more than %g%% below ungated %.1f",
				newest.path, hOnRate, 100*(maxHealthOverhead-1), hOffRate)
		}
		if !(hOnMiss < hOffMiss) {
			problemf("%s: health-gated missrate %.4f not strictly below ungated %.4f under the same injected degradation",
				newest.path, hOnMiss, hOffMiss)
		}
	}

	// 2. Intra-snapshot gates: compiled ≥ 2× recompile at every W ≥ 14, and
	// equal mean gamma between precode modes (same seeds, bit-identical
	// paths — any drift means the modes stopped solving the same problem).
	for key, modes := range rows {
		compiled, recompile := modes["compiled"], modes["recompile"]
		if compiled.Name == "" || recompile.Name == "" {
			continue
		}
		cg, cok := compiled.Metrics["gamma"]
		rg, rok := recompile.Metrics["gamma"]
		if cok && rok && math.Abs(cg-rg) > 1e-6*math.Max(1, math.Abs(rg)) {
			problemf("%s: %s W=%d perturbation quality differs between modes (gamma %.6f vs %.6f)",
				newest.path, key.family, key.w, cg, rg)
		}
		// The ratio gate only applies to families with a registered
		// higher-is-better throughput metric; gating an unregistered family
		// on ns/op would invert the comparison.
		unit, ok := required[key.family]
		if !ok || key.w < minGatedWindow {
			continue
		}
		c, cok := compiled.Metrics[unit]
		r, rok := recompile.Metrics[unit]
		if cok && rok && !(c >= minCompiledRatio*r) {
			problemf("%s: %s W=%d compiled %s %.1f < %g× recompile %.1f",
				newest.path, key.family, key.w, unit, c, minCompiledRatio, r)
		}
	}

	// 3. History: no headline throughput metric may fall >15% below its best
	// committed value on the same platform, after correcting for the pair's
	// median drift. Headline rows are the compiled-mode window rows at gated
	// sizes plus every non-window benchmark; recompile baselines and the W=1
	// overhead-pricing rows are deliberately exempt (they exist to be
	// compared against, not to be protected, and are the noisiest rows in
	// the set).
	headline := func(name string) bool {
		m := windowRow.FindStringSubmatch(name)
		if m == nil {
			return true
		}
		w, _ := strconv.Atoi(m[2])
		return m[3] == "compiled" && w >= minGatedWindow
	}
	// A real code regression is a property of the tree, so it reproduces
	// against every baseline that records the row; a flag raised by exactly
	// one snapshot pair while other same-platform snapshots of the same row
	// pass is a drift-estimate artifact — the scalar median cannot price a
	// host whose speed ratio is heterogeneous across subsystems (e.g. a
	// noisy-neighbor container that slows concurrency-paced serving rows
	// while CPU-bound kernels run at full speed). Flags therefore accumulate
	// per row across all baseline pairs and only rows failing against at
	// least two snapshots — or against the only snapshot that has the row —
	// become problems.
	type rowKey struct{ name, unit string }
	rowSeen := map[rowKey]int{}
	rowFlags := map[rowKey][]string{}
	for _, old := range snaps[:len(snaps)-1] {
		if old.GoOS != newest.GoOS || old.GoArch != newest.GoArch {
			continue // cross-machine numbers are not comparable
		}
		// First pass: estimate the pair's median drift — the recording
		// sessions' uniform speed ratio (container placement, CPU frequency)
		// — before any row is judged. Every shared row's ns/op is a drift
		// witness, including the non-gated recompile baselines and
		// micro-benchmarks, so the estimate has far more support than the
		// handful of gated rows. A slower recording machine shifts every row
		// together and the median absorbs it; a real single-subsystem
		// regression moves its rows against a stable median and still fails.
		var ratios []float64
		for _, r := range old.Results {
			oldNs, ok := r.Metrics["ns/op"]
			if !ok || oldNs <= 0 {
				continue
			}
			newNs, ok := newest.metric(r.Name, "ns/op")
			if !ok || newNs <= 0 {
				continue // benchmark no longer recorded
			}
			ratios = append(ratios, oldNs/newNs) // >1: new session is faster
		}
		drift := 1.0
		if len(ratios) >= minDriftPairs {
			sort.Float64s(ratios)
			drift = ratios[len(ratios)/2]
			if len(ratios)%2 == 0 {
				drift = (drift + ratios[len(ratios)/2-1]) / 2
			}
		}
		// Second pass: gate the headline throughput rows against the
		// drift-corrected baseline.
		type pair struct {
			name, unit     string
			oldVal, newVal float64
		}
		var pairs []pair
		for _, r := range old.Results {
			if !headline(r.Name) {
				continue
			}
			for unit, oldVal := range r.Metrics {
				if !strings.HasSuffix(unit, "/s") || oldVal <= 0 {
					continue
				}
				newVal, ok := newest.metric(r.Name, unit)
				if !ok {
					continue // benchmark or metric no longer recorded
				}
				pairs = append(pairs, pair{r.Name, unit, oldVal, newVal})
			}
		}
		for _, p := range pairs {
			k := rowKey{p.name, p.unit}
			rowSeen[k]++
			if p.newVal < (1-maxRegression)*drift*p.oldVal {
				rowFlags[k] = append(rowFlags[k], fmt.Sprintf(
					"%s: %s %s regressed %.0f%% against %s (median drift %.2f: %.1f → %.1f)",
					newest.path, p.name, p.unit, 100*(1-p.newVal/(drift*p.oldVal)), old.path, drift, p.oldVal, p.newVal))
			}
		}
	}
	for k, flags := range rowFlags {
		if len(flags) >= 2 || rowSeen[k] == 1 {
			for _, f := range flags {
				problemf("%s", f)
			}
		}
	}

	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "benchjson: "+p)
		}
		return fmt.Errorf("%d problem(s) in benchmark history", len(problems))
	}
	fmt.Printf("benchjson: audited %d snapshot(s), newest %s (%d results)\n",
		len(snaps), newest.path, len(newest.Results))
	return nil
}
