// Command benchjson runs the repository's tier-1 benchmarks and writes a
// machine-readable JSON summary, so the performance trajectory across PRs
// has concrete data points instead of prose claims. The default selection
// covers the coherence-window acceptance benchmark and the decode-path
// micro-benchmarks it amortizes; -bench overrides it with any `go test
// -bench` regular expression.
//
// Run it from the repository root:
//
//	go run ./tools/benchjson -out BENCH_PR3.json
//
// Every benchmark line is parsed into its name, iteration count and metric
// map (ns/op, B/op, custom metrics like symbols/s), preserving exactly what
// the testing package reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// defaultBench selects the benchmarks the perf trajectory tracks: the
// compile/execute acceptance benchmark plus the micro-benchmarks of the
// stages it amortizes.
const defaultBench = "BenchmarkCoherenceWindow|BenchmarkReduceToIsing$|BenchmarkEmbedIsing$|BenchmarkAnneal48BPSK$|BenchmarkDecodeEndToEnd$"

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the file benchjson writes.
type Report struct {
	GoVersion string   `json:"go_version"`
	GoOS      string   `json:"goos"`
	GoArch    string   `json:"goarch"`
	Bench     string   `json:"bench_regex"`
	BenchTime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

// benchLine matches one `go test -bench` result row; the trailing -N
// GOMAXPROCS suffix is stripped from the name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func main() {
	var (
		bench     = flag.String("bench", defaultBench, "benchmark selection regexp (go test -bench)")
		benchtime = flag.String("benchtime", "5x", "per-benchmark budget (go test -benchtime)")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("out", "BENCH_PR3.json", "output JSON path")
	)
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench, "-benchtime", *benchtime, *pkg)
	raw, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Stderr.Write(ee.Stderr)
		}
		fmt.Fprintf(os.Stderr, "benchjson: go test: %v\n%s", err, raw)
		os.Exit(1)
	}

	report := Report{
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		Bench:     *bench,
		BenchTime: *benchtime,
	}
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: m[1], Iterations: iters, Metrics: parseMetrics(m[3])}
		if len(res.Metrics) == 0 {
			continue
		}
		report.Results = append(report.Results, res)
	}
	if len(report.Results) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines matched %q\n", *bench)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(report.Results), *out)
}

// parseMetrics reads the value/unit pairs of one result row, e.g.
// "123 ns/op\t 45.6 symbols/s".
func parseMetrics(rest string) map[string]float64 {
	fields := strings.Fields(rest)
	metrics := make(map[string]float64)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		metrics[fields[i+1]] = v
	}
	return metrics
}
