// Command docgate is the repository's documentation CI gate. It fails when
//
//   - a markdown file contains a relative link to a file or anchor-less
//     target that does not exist in the repository, or
//   - an internal package lacks a package doc comment, or
//   - an exported identifier in the fully-documented packages
//     (internal/backend, internal/sched, internal/metrics, internal/qos,
//     internal/reduction, internal/core, internal/precoding,
//     internal/softout, internal/telemetry, internal/anneal,
//     internal/router, cmd/fleetsim) lacks a doc
//     comment.
//
// Run it from the repository root:
//
//	go run ./tools/docgate
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// fullDocPackages are the directories where every exported identifier must
// carry a doc comment (ISSUE 2's godoc gate, extended to the compile/execute
// split's home packages by ISSUE 3, to the downlink precoding subsystem by
// ISSUE 4, to the telemetry plane by ISSUE 6, to the anneal engine by
// ISSUE 7, to the capability-descriptor surface and the fleet capacity
// planner by ISSUE 9, and to the solver-health plane by ISSUE 10).
var fullDocPackages = []string{
	"internal/backend",
	"internal/sched",
	"internal/metrics",
	"internal/qos",
	"internal/reduction",
	"internal/core",
	"internal/precoding",
	"internal/softout",
	"internal/telemetry",
	"internal/anneal",
	"internal/router",
	"internal/health",
	"cmd/fleetsim",
}

func main() {
	var problems []string
	problems = append(problems, checkMarkdownLinks(".")...)
	problems = append(problems, checkPackageDocs("internal")...)
	for _, dir := range fullDocPackages {
		problems = append(problems, checkExportedDocs(dir)...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docgate: "+p)
		}
		fmt.Fprintf(os.Stderr, "docgate: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docgate: ok")
}

// mdLink matches inline markdown links; the target is group 1.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies that every relative link target in the
// repository's markdown files resolves to an existing file or directory.
func checkMarkdownLinks(root string) []string {
	var problems []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		base := info.Name()
		if info.IsDir() {
			if base == ".git" || base == ".github" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(base, ".md") {
			return nil
		}
		// SNIPPETS.md and PAPERS.md are machine-generated retrieval digests
		// whose links reference source material outside this repository.
		if base == "SNIPPETS.md" || base == "PAPERS.md" {
			return nil
		}
		content, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(content), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue // external or intra-document link
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems,
					fmt.Sprintf("%s: broken link %q (%s does not exist)", path, m[1], resolved))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, "markdown walk: "+err.Error())
	}
	return problems
}

// checkPackageDocs verifies every package under root carries a package doc
// comment in at least one non-test file.
func checkPackageDocs(root string) []string {
	var problems []string
	dirs := map[string]bool{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return []string{"package walk: " + err.Error()}
	}
	for dir := range dirs {
		pkgs, err := parseDir(dir)
		if err != nil {
			problems = append(problems, dir+": "+err.Error())
			continue
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil {
					documented = true
					break
				}
			}
			if !documented {
				problems = append(problems,
					fmt.Sprintf("%s: package %s has no package doc comment", dir, name))
			}
		}
	}
	return problems
}

// checkExportedDocs verifies every exported top-level identifier (types,
// funcs, methods on exported types, consts, vars) in dir has a doc comment;
// a group doc on a const/var/type block covers its specs.
func checkExportedDocs(dir string) []string {
	pkgs, err := parseDir(dir)
	if err != nil {
		return []string{dir + ": " + err.Error()}
	}
	var problems []string
	flag := func(pos token.Position, what string) {
		problems = append(problems,
			fmt.Sprintf("%s:%d: undocumented exported %s", pos.Filename, pos.Line, what))
	}
	for _, pkg := range pkgs {
		fset := pkg.fset
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !exportedFunc(d) {
						continue
					}
					if d.Doc == nil {
						flag(fset.Position(d.Pos()), "function "+d.Name.Name)
					}
				case *ast.GenDecl:
					groupDoc := d.Doc != nil
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && !groupDoc && s.Doc == nil {
								flag(fset.Position(s.Pos()), "type "+s.Name.Name)
							}
						case *ast.ValueSpec:
							if groupDoc || s.Doc != nil {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() {
									flag(fset.Position(s.Pos()), "value "+n.Name)
									break
								}
							}
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedFunc reports whether d is an exported function, or an exported
// method on an exported receiver type.
func exportedFunc(d *ast.FuncDecl) bool {
	if !d.Name.IsExported() {
		return false
	}
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.IsExported()
	}
	return true
}

// parsedPkg pairs a parsed package with its file set for positions.
type parsedPkg struct {
	*ast.Package
	fset *token.FileSet
}

// parseDir parses the non-test Go files of one directory.
func parseDir(dir string) (map[string]*parsedPkg, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*parsedPkg, len(pkgs))
	for name, pkg := range pkgs {
		out[name] = &parsedPkg{Package: pkg, fset: fset}
	}
	return out, nil
}
