package quamax_test

import (
	"math"
	"testing"

	"quamax"
	"quamax/internal/detector"
)

// The public façade: construct, generate, decode, score — the README's
// quick-start path.
func TestPublicAPIQuickstart(t *testing.T) {
	dec, err := quamax.NewDecoder(quamax.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := quamax.NewSource(42)
	inst, err := quamax.NewInstance(src, quamax.InstanceConfig{
		Mod: quamax.QPSK, Users: 4, Antennas: 4, SNRdB: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := dec.DecodeInstance(inst, src)
	if err != nil {
		t.Fatal(err)
	}
	if inst.BitErrors(out.Bits) != 0 {
		t.Fatalf("quick-start decode had %d bit errors", inst.BitErrors(out.Bits))
	}
	if ttb := out.Distribution.TTB(1e-6, out.WallMicrosPerAnneal, out.Pf); math.IsInf(ttb, 1) {
		t.Fatal("TTB unreachable on an easy instance")
	}
}

// The public soft-output façade: the same decode with per-bit LLRs.
func TestPublicAPISoftDecode(t *testing.T) {
	dec, err := quamax.NewDecoder(quamax.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := quamax.NewSource(43)
	inst, err := quamax.NewInstance(src, quamax.InstanceConfig{
		Mod: quamax.QPSK, Users: 4, Antennas: 4, SNRdB: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := dec.DecodeInstanceSoft(inst, quamax.SoftSpec{}, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.LLRs) != len(out.Bits) {
		t.Fatalf("%d LLRs for %d bits", len(out.LLRs), len(out.Bits))
	}
	for k, llr := range out.LLRs {
		if llr > 0 && out.Bits[k] != 1 || llr < 0 && out.Bits[k] != 0 {
			t.Fatalf("bit %d: LLR %g disagrees with the hard decision %d", k, llr, out.Bits[k])
		}
	}
}

func TestPublicAPIDefaultsAndHelpers(t *testing.T) {
	if quamax.DW2Q().NumWorkingQubits() != 2031 {
		t.Fatal("DW2Q helper wrong")
	}
	if quamax.NewMachine() == nil {
		t.Fatal("NewMachine nil")
	}
	if !math.IsInf(quamax.NoiseFree(), 1) {
		t.Fatal("NoiseFree must be +Inf")
	}
	src := quamax.NewSource(1)
	h := quamax.RayleighChannel().Generate(src, 3, 2)
	if h.Rows != 3 || h.Cols != 2 {
		t.Fatal("channel helper wrong shape")
	}
	if quamax.RandomPhaseChannel().Name() != "random-phase" {
		t.Fatal("RandomPhaseChannel wrong model")
	}
}

// End-to-end cross-validation: on noise-free channels QuAMax's decoded
// symbol vector must match the sphere decoder's ML solution exactly, across
// every modulation — the two completely independent ML paths in this
// repository agree.
func TestQuAMaxMatchesSphereDecoderML(t *testing.T) {
	cases := []struct {
		mod   quamax.Modulation
		users int
		jf    float64
	}{
		// |J_F| per problem class, mirroring the paper's Fig. 5 finding that
		// the optimum is size/modulation dependent (16-QAM's wider
		// coefficient spread wants stronger chains and more anneals).
		{quamax.BPSK, 10, 4},
		{quamax.QPSK, 5, 4},
		{quamax.QAM16, 3, 12},
	}
	for _, c := range cases {
		dec, err := quamax.NewDecoder(quamax.Options{
			JF: c.jf, ImprovedRange: true,
			Params: quamax.AnnealParams{
				AnnealTimeMicros: 1, PauseTimeMicros: 1, PausePosition: 0.35,
				NumAnneals: 400,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		src := quamax.NewSource(77 + int64(c.mod))
		for trial := 0; trial < 3; trial++ {
			inst, err := quamax.NewInstance(src, quamax.InstanceConfig{
				Mod: c.mod, Users: c.users, Antennas: c.users, SNRdB: quamax.NoiseFree(),
			})
			if err != nil {
				t.Fatal(err)
			}
			out, err := dec.DecodeInstance(inst, src)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := detector.SphereDecode(inst.Mod, inst.H, inst.Y, detector.SphereOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for i := range out.Symbols {
				if out.Symbols[i] != sp.Symbols[i] {
					t.Fatalf("%v trial %d: QuAMax symbol %d = %v, sphere = %v",
						c.mod, trial, i, out.Symbols[i], sp.Symbols[i])
				}
			}
		}
	}
}
